(* Crash-safe checkpoint/resume and deadline-aware degradation.

   Three layers under test: the wire format (Checkpoint), the cooperative
   budgets (Budget), and the end-to-end contract through Cp_als and
   Tcca.fit_checked — interrupt-at-sweep-k + resume must be bit-identical to
   an uninterrupted run (dense and factored operators, any pool size), and
   every way a snapshot can go bad must degrade to a cold start with a typed
   warning, never a crash or a silently wrong model.  CI runs this binary at
   TCCA_DOMAINS=1 and 4. *)

open Test_support

let tmp_ckpt () = Filename.temp_file "tcca_ckpt" ".bin"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let sample_state ?(failure = None) () =
  { Checkpoint.rs_init_random = Some 17;
    rs_iterations = 5;
    rs_previous_fit = 0.75;
    rs_best_fit = 0.8;
    rs_drops = 2;
    rs_converged = false;
    rs_failure = failure;
    rs_weights = [| 1.5; 0.25 |];
    rs_factors =
      [| { Checkpoint.rows = 2; cols = 2; data = [| 1.; 2.; 3.; 4. |] };
         { Checkpoint.rows = 3; cols = 2; data = [| 0.5; -0.5; 0.; 1e-300; 2.; 3. |] } |];
    rs_history = [| 0.1; 0.5; 0.7; 0.74; 0.75 |] }

let sample ?failure () =
  { Checkpoint.fingerprint = "test/1 rank=2";
    domains = 4;
    attempt = 1;
    completed = [ sample_state () ];
    current = sample_state ?failure () }

(* ------------------------------------------------------------------ *)
(* Wire format *)

let test_roundtrip () =
  let path = tmp_ckpt () in
  (* Exercise every failure constructor through the tagged encoding, plus the
     infinities a fresh run carries in its fit fields. *)
  let failures =
    [ None;
      Some (Robust.Not_converged { stage = "cp_als"; sweeps = 7; residual = 0.5 });
      Some
        (Robust.Not_positive_definite
           { stage = "whiten"; pivot = 3; value = -1.; jitter_tried = 1e-8 });
      Some (Robust.Non_finite { stage = "cp_als"; where = "fit at sweep 2" });
      Some (Robust.Rank_deficient { view = 1; rank = 0; dim = 5 });
      Some
        (Robust.Deadline_exceeded
           { stage = "cp_als"; sweeps = 9; elapsed = 1.5; limit = "wall 2s" }) ]
  in
  List.iter
    (fun failure ->
      let t = sample ~failure () in
      let t =
        { t with
          Checkpoint.current =
            { t.Checkpoint.current with Checkpoint.rs_previous_fit = neg_infinity } }
      in
      Checkpoint.save ~path t;
      match Checkpoint.load ~path with
      | Ok t' -> check_true "roundtrip equal" (t = t')
      | Error e -> Alcotest.failf "load failed: %s" (Checkpoint.load_error_to_string e))
    failures;
  Sys.remove path

let test_truncated () =
  let path = tmp_ckpt () in
  Checkpoint.save ~path (sample ());
  let bytes = read_file path in
  (* Shorter than the header. *)
  write_file path (String.sub bytes 0 10);
  (match Checkpoint.load ~path with
  | Error Checkpoint.Truncated -> ()
  | _ -> Alcotest.fail "10-byte file must be Truncated");
  (* Header intact, payload torn. *)
  write_file path (String.sub bytes 0 (String.length bytes - 7));
  (match Checkpoint.load ~path with
  | Error Checkpoint.Truncated -> ()
  | _ -> Alcotest.fail "torn payload must be Truncated");
  Sys.remove path

let patch_byte s i f = String.mapi (fun j c -> if j = i then f c else c) s

let test_corrupt () =
  let path = tmp_ckpt () in
  Checkpoint.save ~path (sample ());
  let bytes = read_file path in
  (* Flip one payload byte: CRC must catch it. *)
  write_file path (patch_byte bytes 24 (fun c -> Char.chr (Char.code c lxor 0xFF)));
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | _ -> Alcotest.fail "bit-flipped payload must be Corrupt");
  (* Bad magic. *)
  write_file path (patch_byte bytes 0 (fun _ -> 'X'));
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | _ -> Alcotest.fail "bad magic must be Corrupt");
  Sys.remove path

let test_version_mismatch () =
  let path = tmp_ckpt () in
  Checkpoint.save ~path (sample ());
  let bytes = read_file path in
  (* The version field is bytes 4–7 (u32 LE); the CRC covers only the
     payload, so this is a clean version mismatch, not corruption. *)
  write_file path (patch_byte bytes 4 (fun c -> Char.chr (Char.code c + 1)));
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Version_mismatch { found; expected; direction }) ->
    check_true "found = version+1" (found = Checkpoint.version + 1);
    check_true "expected = current" (expected = Checkpoint.version);
    check_true "direction = Newer" (direction = Checkpoint.Newer)
  | _ -> Alcotest.fail "patched version must be Version_mismatch");
  (* And the other direction: a strictly older on-disk version. *)
  write_file path (patch_byte bytes 4 (fun c -> Char.chr (Char.code c - 1)));
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Version_mismatch { direction = Checkpoint.Older; _ }) -> ()
  | _ -> Alcotest.fail "patched-down version must be Older");
  Sys.remove path

let test_crc32_known_vector () =
  (* The standard zlib/IEEE check value. *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926 (Checkpoint.crc32 "123456789")

let test_missing_file_is_cold_start () =
  let cfg = Checkpoint.config "/nonexistent/dir/never.ckpt" in
  check_true "absent file -> None" (Checkpoint.load_for_resume ~fingerprint:"x" cfg = None)

let test_fingerprint_mismatch_cold_start () =
  let path = tmp_ckpt () in
  Checkpoint.save ~path (sample ());
  Robust.clear_warnings ();
  let cfg = Checkpoint.config path in
  check_true "mismatch -> None"
    (Checkpoint.load_for_resume ~fingerprint:"other/2" cfg = None);
  check_true "mismatch warned"
    (List.exists
       (fun w -> String.length w >= 10 && String.sub w 0 10 = "Checkpoint")
       (Robust.recent_warnings ()));
  Robust.clear_warnings ();
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Budget unit semantics *)

let test_budget_unlimited () =
  check_true "unlimited" (Budget.is_unlimited Budget.unlimited);
  check_true "never expires"
    (Budget.expired ~stage:"t" ~sweeps:max_int Budget.unlimited = None);
  check_true "no wall" (Budget.remaining_seconds Budget.unlimited = None)

let test_budget_sweeps () =
  let b = Budget.create ~sweeps:3 () in
  check_true "not unlimited" (not (Budget.is_unlimited b));
  check_true "under" (Budget.expired ~stage:"t" ~sweeps:2 b = None);
  (match Budget.expired ~stage:"cp_als" ~sweeps:3 b with
  | Some (Robust.Deadline_exceeded { stage = "cp_als"; sweeps = 3; _ }) -> ()
  | _ -> Alcotest.fail "sweep limit must trip as Deadline_exceeded");
  (* Degenerate zero budgets expire at the first probe. *)
  check_true "zero sweeps"
    (Budget.expired ~stage:"t" ~sweeps:0 (Budget.create ~sweeps:0 ()) <> None);
  check_true "zero wall"
    (Budget.expired ~stage:"t" ~sweeps:0 (Budget.create ~wall_seconds:0. ()) <> None);
  (try
     ignore (Budget.create ~sweeps:(-1) ());
     Alcotest.fail "negative sweeps accepted"
   with Invalid_argument _ -> ())

let test_budget_deadline_now_inject () =
  let b = Budget.create ~wall_seconds:3600. () in
  check_true "healthy probe" (Budget.expired ~stage:"t" ~sweeps:1 b = None);
  Robust.Inject.(with_stage Deadline_now (fun () ->
      match Budget.expired ~stage:"t" ~sweeps:1 b with
      | Some (Robust.Deadline_exceeded { limit = "injected"; _ }) -> ()
      | _ -> Alcotest.fail "armed Deadline_now must expire every probe"))

(* ------------------------------------------------------------------ *)
(* Solver contract: deadlines *)

let tcca_views r = Array.map (fun d -> random_mat r d 40) [| 5; 4; 6 |]

let als_options = { Cp_als.default_options with max_iter = 25; tol = 0. }

let finite_model t views =
  Mat.all_finite (Tcca.transform t views) && Vec.all_finite (Tcca.correlations t)

let test_deadline_returns_best_so_far () =
  let r = rng () in
  let views = tcca_views r in
  Robust.clear_warnings ();
  match
    Tcca.fit_checked ~solver:(Tcca.Als als_options)
      ~budget:(Budget.create ~sweeps:4 ())
      ~r:2 views
  with
  | Error e -> Alcotest.failf "deadline must not be an error: %s" (Robust.failure_to_string e)
  | Ok t ->
    check_true "model finite" (finite_model t views);
    let note = Tcca.solver_info t in
    check_true "4 sweeps ran"
      (String.length note >= 8 && String.sub note 0 8 = "als: 4 i");
    check_true "note reports deadline" (contains note "deadline exceeded");
    check_true "warning pushed"
      (List.exists (fun w -> contains w "deadline") (Robust.recent_warnings ()));
    Robust.clear_warnings ()

let test_deadline_now_through_fit () =
  (* Expiry at the very first probe: the fit still returns a finite model
     (the initialization), never a crash. *)
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage Deadline_now (fun () ->
      match
        Tcca.fit_checked ~solver:(Tcca.Als als_options)
          ~budget:(Budget.create ~wall_seconds:3600. ())
          ~r:2 views
      with
      | Ok t -> check_true "zero-sweep model finite" (finite_model t views)
      | Error e -> Alcotest.failf "injected deadline crashed: %s" (Robust.failure_to_string e)))

let test_deadline_other_solvers () =
  let r = rng () in
  let views = tcca_views r in
  let budget = Budget.create ~sweeps:2 () in
  (match Tcca.fit_checked ~solver:(Tcca.Sampled_als Cp_rand.default_options) ~budget ~r:2 views with
  | Ok t -> check_true "sampled-als best-so-far finite" (finite_model t views)
  | Error e -> Alcotest.failf "sampled-als deadline: %s" (Robust.failure_to_string e));
  match Tcca.fit_checked ~solver:Tcca.Power_deflation ~budget ~r:2 views with
  | Ok t -> check_true "power best-so-far finite" (finite_model t views)
  | Error e -> Alcotest.failf "power deadline: %s" (Robust.failure_to_string e)

let test_hopm_budget () =
  let r = rng () in
  let t = random_tensor r [| 4; 4; 4 |] in
  let res = Hopm.rank1 ~budget:(Budget.create ~sweeps:2 ()) t in
  check_true "stopped at 2 sweeps" (res.Hopm.iterations = 2);
  check_true "deadline reported" (res.Hopm.deadline <> None);
  check_true "vectors finite" (Array.for_all Vec.all_finite res.Hopm.vectors)

(* ------------------------------------------------------------------ *)
(* Solver contract: corrupt snapshots degrade to cold start *)

let fit_with_ckpt ?budget ~resume path views =
  Tcca.fit_checked ~solver:(Tcca.Als als_options) ?budget
    ~checkpoint:(Checkpoint.config ~resume path) ~r:2 views

let expect_ok = function
  | Ok t -> t
  | Error e -> Alcotest.failf "fit failed: %s" (Robust.failure_to_string e)

let test_torn_write_degrades_to_cold_start () =
  let path = tmp_ckpt () in
  let r = rng () in
  let views = tcca_views r in
  let reference = expect_ok (Tcca.fit_checked ~solver:(Tcca.Als als_options) ~r:2 views) in
  (* Every save lands torn at the final path — the file is always invalid. *)
  Robust.Inject.(with_stage Torn_checkpoint_write (fun () ->
      ignore (expect_ok (fit_with_ckpt ~resume:false path views))));
  check_true "torn file on disk" (Sys.file_exists path);
  check_true "torn file is unloadable"
    (match Checkpoint.load ~path with Error Checkpoint.Truncated -> true | _ -> false);
  Robust.clear_warnings ();
  let resumed = expect_ok (fit_with_ckpt ~resume:true path views) in
  check_true "cold-start warning"
    (List.exists
       (fun w -> String.length w >= 10 && String.sub w 0 10 = "Checkpoint")
       (Robust.recent_warnings ()));
  (* Cold start = same model as a fresh fit. *)
  check_mat ~eps:0. "cold start matches fresh fit"
    (Tcca.projections reference).(0) (Tcca.projections resumed).(0);
  Robust.clear_warnings ();
  Sys.remove path

let test_corrupt_checkpoint_degrades_to_cold_start () =
  let path = tmp_ckpt () in
  let r = rng () in
  let views = tcca_views r in
  let reference = expect_ok (Tcca.fit_checked ~solver:(Tcca.Als als_options) ~r:2 views) in
  Robust.Inject.(with_stage Corrupt_checkpoint (fun () ->
      ignore (expect_ok (fit_with_ckpt ~resume:false path views))));
  check_true "corrupt file is unloadable"
    (match Checkpoint.load ~path with Error (Checkpoint.Corrupt _) -> true | _ -> false);
  Robust.clear_warnings ();
  let resumed = expect_ok (fit_with_ckpt ~resume:true path views) in
  check_true "cold-start warning" (Robust.recent_warnings () <> []);
  check_mat ~eps:0. "cold start matches fresh fit"
    (Tcca.projections reference).(0) (Tcca.projections resumed).(0);
  Robust.clear_warnings ();
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* The tentpole property: interrupt at sweep k + resume == uninterrupted *)

let models_identical a b =
  let pa = Tcca.projections a and pb = Tcca.projections b in
  Array.length pa = Array.length pb
  && Array.for_all2 (Mat.equal ~eps:0.) pa pb
  && Vec.equal ~eps:0. (Tcca.correlations a) (Tcca.correlations b)

let resume_identity ~materialize ~k seed =
  let r = Rng.create seed in
  let views = tcca_views r in
  let fit ?budget ?checkpoint () =
    expect_ok
      (Tcca.fit_checked ~materialize ~solver:(Tcca.Als als_options) ?budget ?checkpoint
         ~r:2 views)
  in
  let reference = fit () in
  let path = tmp_ckpt () in
  (* Interrupt: the sweep budget stops the solve at sweep k, with a snapshot
     taken every sweep. *)
  let _partial =
    fit
      ~budget:(Budget.create ~sweeps:k ())
      ~checkpoint:(Checkpoint.config ~resume:false path) ()
  in
  let resumed = fit ~checkpoint:(Checkpoint.config ~resume:true path) () in
  Sys.remove path;
  models_identical reference resumed

let prop_resume_bit_identical =
  qtest ~count:8 "interrupt+resume == uninterrupted (dense & factored)"
    QCheck2.Gen.(triple (int_range 1 20) bool (int_range 0 1000))
    (fun (k, materialize, seed) -> resume_identity ~materialize ~k seed)

let test_resume_across_pool_sizes () =
  (* Snapshot under a 1-domain pool, resume under 4 domains: the kernels are
     bitwise pool-size-independent, so the resumed model must still equal the
     uninterrupted single-domain one. *)
  let saved = Parallel.num_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_num_domains saved)
    (fun () ->
      let views = tcca_views (rng ()) in
      let fit ?budget ?checkpoint () =
        expect_ok
          (Tcca.fit_checked ~solver:(Tcca.Als als_options) ?budget ?checkpoint ~r:2 views)
      in
      Parallel.set_num_domains 1;
      let reference = fit () in
      let path = tmp_ckpt () in
      ignore
        (fit
           ~budget:(Budget.create ~sweeps:9 ())
           ~checkpoint:(Checkpoint.config ~resume:false path) ());
      Parallel.set_num_domains 4;
      let resumed = fit ~checkpoint:(Checkpoint.config ~resume:true path) () in
      Sys.remove path;
      check_true "resume at 4 domains == uninterrupted at 1" (models_identical reference resumed))

let test_resume_mid_restart () =
  (* Interrupt during restart 1 (the injected-NaN first run fails): resume
     must restore the restart position and the completed-run list, so the
     final runs report matches an uninterrupted multi-start solve. *)
  let r = rng () in
  let t = random_tensor r [| 4; 5; 3 |] in
  let options = { Cp_als.default_options with max_iter = 6; tol = 0.; restarts = 2 } in
  (* First run dies at sweep 1 (injected NaN is deterministic per sweep, so
     restarts fail too — giving a 3-run trace to compare). *)
  let uninterrupted =
    Robust.Inject.(with_stage Als_nan (fun () -> snd (Cp_als.decompose ~options ~rank:2 t)))
  in
  let path = tmp_ckpt () in
  Robust.Inject.(with_stage Als_nan (fun () ->
      (* Budget of 2 total sweeps: run 1 dies at sweep 1, restart 1 starts and
         is interrupted by the budget at its own sweep 1 boundary. *)
      ignore
        (Cp_als.decompose ~options
           ~budget:(Budget.create ~sweeps:2 ())
           ~checkpoint:(Checkpoint.config ~resume:false path)
           ~rank:2 t)));
  let _, resumed =
    Robust.Inject.(with_stage Als_nan (fun () ->
        Cp_als.decompose ~options
          ~checkpoint:(Checkpoint.config ~resume:true path)
          ~rank:2 t))
  in
  Sys.remove path;
  check_true "same run count"
    (List.length resumed.Cp_als.runs = List.length uninterrupted.Cp_als.runs);
  check_true "same restart inits"
    (List.map (fun r -> r.Cp_als.run_init) resumed.Cp_als.runs
    = List.map (fun r -> r.Cp_als.run_init) uninterrupted.Cp_als.runs);
  check_true "same fits"
    (List.for_all2
       (fun a b -> Int64.bits_of_float a.Cp_als.run_fit = Int64.bits_of_float b.Cp_als.run_fit)
       resumed.Cp_als.runs uninterrupted.Cp_als.runs)

let test_checkpointed_equals_plain () =
  (* Checkpointing must not perturb the arithmetic at all. *)
  let views = tcca_views (rng ()) in
  let reference = expect_ok (Tcca.fit_checked ~solver:(Tcca.Als als_options) ~r:2 views) in
  let path = tmp_ckpt () in
  let ckpt = expect_ok (fit_with_ckpt ~resume:false path views) in
  Sys.remove path;
  check_true "checkpointed == plain" (models_identical reference ckpt)

let test_ktcca_resume () =
  let r = rng () in
  let kernels = Array.init 3 (fun _ -> Mat.tgram (random_mat r 6 25)) in
  let fit ?budget ?checkpoint () =
    match
      Ktcca.fit_checked ~solver:(Tcca.Als als_options) ?budget ?checkpoint ~r:2 kernels
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "ktcca fit failed: %s" (Robust.failure_to_string e)
  in
  let reference = fit () in
  let path = tmp_ckpt () in
  ignore
    (fit
       ~budget:(Budget.create ~sweeps:5 ())
       ~checkpoint:(Checkpoint.config ~resume:false path) ());
  let resumed = fit ~checkpoint:(Checkpoint.config ~resume:true path) () in
  Sys.remove path;
  check_true "ktcca resume identical"
    (Vec.equal ~eps:0. (Ktcca.correlations reference) (Ktcca.correlations resumed)
    && Array.for_all2 (Mat.equal ~eps:0.) (Ktcca.dual_weights reference)
         (Ktcca.dual_weights resumed))

let () =
  Robust.Inject.reset ();
  Alcotest.run "checkpoint"
    [ ( "wire-format",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "corrupt" `Quick test_corrupt;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "crc32 vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "missing file" `Quick test_missing_file_is_cold_start;
          Alcotest.test_case "fingerprint mismatch" `Quick test_fingerprint_mismatch_cold_start ] );
      ( "budget",
        [ Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "sweeps" `Quick test_budget_sweeps;
          Alcotest.test_case "deadline-now inject" `Quick test_budget_deadline_now_inject ] );
      ( "deadline",
        [ Alcotest.test_case "best-so-far model" `Quick test_deadline_returns_best_so_far;
          Alcotest.test_case "expiry at sweep 0" `Quick test_deadline_now_through_fit;
          Alcotest.test_case "other solvers" `Quick test_deadline_other_solvers;
          Alcotest.test_case "hopm budget" `Quick test_hopm_budget ] );
      ( "degradation",
        [ Alcotest.test_case "torn write" `Quick test_torn_write_degrades_to_cold_start;
          Alcotest.test_case "corrupt checkpoint" `Quick
            test_corrupt_checkpoint_degrades_to_cold_start ] );
      ( "resume",
        [ Alcotest.test_case "checkpointed == plain" `Quick test_checkpointed_equals_plain;
          Alcotest.test_case "across pool sizes" `Quick test_resume_across_pool_sizes;
          Alcotest.test_case "mid-restart" `Quick test_resume_mid_restart;
          Alcotest.test_case "ktcca" `Quick test_ktcca_resume;
          prop_resume_bit_identical ] ) ]
