open Test_support

let test_l2 () =
  check_float "l2" 5. (Distance.eval Distance.L2 [| 0.; 0. |] [| 3.; 4. |]);
  check_float "sq_l2" 25. (Distance.eval Distance.Sq_l2 [| 0.; 0. |] [| 3.; 4. |])

let test_l1 () = check_float "l1" 7. (Distance.eval Distance.L1 [| 0.; 0. |] [| 3.; 4. |])

let test_chi2 () =
  (* χ²((1,0),(0,1)) = 1/1 + 1/1 = 2. *)
  check_float "chi2" 2. (Distance.eval Distance.Chi2 [| 1.; 0. |] [| 0.; 1. |]);
  (* Zero-denominator terms are skipped. *)
  check_float "zero bins" 0. (Distance.eval Distance.Chi2 [| 0.; 0. |] [| 0.; 0. |]);
  check_float "identical" 0. (Distance.eval Distance.Chi2 [| 0.3; 0.7 |] [| 0.3; 0.7 |])

let test_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Distance.eval: dimension mismatch")
    (fun () -> ignore (Distance.eval Distance.L2 [| 1. |] [| 1.; 2. |]))

let test_pairwise () =
  let x = Mat.of_cols [| [| 0.; 0. |]; [| 3.; 4. |]; [| 6.; 8. |] |] in
  let d = Distance.pairwise Distance.L2 x in
  check_float "d01" 5. (Mat.get d 0 1);
  check_float "d02" 10. (Mat.get d 0 2);
  check_float "d12" 5. (Mat.get d 1 2);
  check_true "symmetric" (Mat.is_symmetric d);
  check_float "diag" 0. (Mat.get d 1 1)

let test_max_pairwise () =
  let r = rng () in
  let x = random_mat r 4 23 in
  List.iter
    (fun kind ->
      (* The streaming bandwidth pass must agree bitwise with the dense one. *)
      let dense = Distance.max_entry (Distance.pairwise kind x) in
      check_true "streaming = dense max" (Distance.max_pairwise kind x = dense))
    [ Distance.L2; Distance.Sq_l2; Distance.L1 ];
  check_float "singleton" 0. (Distance.max_pairwise Distance.L2 (random_mat r 3 1))

let prop_pairwise_bitwise_symmetric =
  (* The banded pairwise kernel computes the upper triangle and mirrors it, so
     symmetry is exact — not approximate — regardless of the pool split. *)
  qtest ~count:40 "pairwise is bitwise symmetric" gen_mat (fun x ->
      let d = Distance.pairwise Distance.L2 x in
      let n = fst (Mat.dims d) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if not (Mat.get d i j = Mat.get d j i) then ok := false
        done
      done;
      !ok)

let test_cross () =
  let a = Mat.of_cols [| [| 0. |]; [| 1. |] |] in
  let b = Mat.of_cols [| [| 2. |]; [| 5. |]; [| -1. |] |] in
  let d = Distance.cross Distance.L2 a b in
  Alcotest.(check (pair int int)) "shape" (2, 3) (Mat.dims d);
  check_float "entry" 4. (Mat.get d 1 2 |> fun v -> v *. 2.)

let prop_symmetry =
  qtest ~count:60 "d(x,y) = d(y,x)"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      QCheck2.assume (n > 0);
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      let ok kind = Float.abs (Distance.eval kind x y -. Distance.eval kind y x) < 1e-9 in
      ok Distance.L2 && ok Distance.L1 && ok Distance.Sq_l2)

let prop_identity =
  qtest ~count:60 "d(x,x) = 0" gen_vec (fun x ->
      QCheck2.assume (Array.length x > 0);
      Distance.eval Distance.L2 x x = 0. && Distance.eval Distance.L1 x x = 0.)

let prop_l2_triangle =
  qtest ~count:60 "L2 triangle inequality"
    QCheck2.Gen.(triple gen_vec gen_vec gen_vec)
    (fun (x, y, z) ->
      let n = min (Array.length x) (min (Array.length y) (Array.length z)) in
      QCheck2.assume (n > 0);
      let x = Array.sub x 0 n and y = Array.sub y 0 n and z = Array.sub z 0 n in
      Distance.eval Distance.L2 x z
      <= Distance.eval Distance.L2 x y +. Distance.eval Distance.L2 y z +. 1e-9)

let () =
  Alcotest.run "distance"
    [ ( "kinds",
        [ Alcotest.test_case "l2" `Quick test_l2;
          Alcotest.test_case "l1" `Quick test_l1;
          Alcotest.test_case "chi2" `Quick test_chi2;
          Alcotest.test_case "mismatch" `Quick test_mismatch ] );
      ( "matrices",
        [ Alcotest.test_case "pairwise" `Quick test_pairwise;
          Alcotest.test_case "max pairwise" `Quick test_max_pairwise;
          Alcotest.test_case "cross" `Quick test_cross ] );
      ( "properties",
        [ prop_symmetry; prop_identity; prop_l2_triangle; prop_pairwise_bitwise_symmetric ] ) ]
