open Test_support

(* A well-separated rank-2 tensor with orthogonal factors: ALS must recover
   it essentially exactly. *)
let separated_rank2 () =
  let u1 = Mat.of_cols [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |] |] in
  let u2 = Mat.of_cols [| [| 0.; 1.; 0.; 0. |]; [| 0.; 0.; 1.; 0. |] |] in
  let u3 = Mat.of_cols [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  { Kruskal.weights = [| 5.; 2. |]; factors = [| u1; u2; u3 |] }

let test_exact_recovery_rank1 () =
  let r = rng () in
  let xs = [| Vec.normalize (random_vec r 4); Vec.normalize (random_vec r 3); Vec.normalize (random_vec r 5) |] in
  let t = Tensor.scale 3. (Tensor.outer xs) in
  let k, info = Cp_als.decompose ~rank:1 t in
  check_float ~eps:1e-6 "fit = 1" 1. info.Cp_als.fit;
  check_float ~eps:1e-6 "weight = 3" 3. (Float.abs k.Kruskal.weights.(0))

let test_exact_recovery_rank2 () =
  let truth = separated_rank2 () in
  let t = Kruskal.to_tensor truth in
  let k, info = Cp_als.decompose ~rank:2 t in
  check_true "converged" info.Cp_als.converged;
  check_float ~eps:1e-6 "fit = 1" 1. (Kruskal.fit k t);
  check_float ~eps:1e-5 "weights recovered" 5. (Float.abs k.Kruskal.weights.(0));
  check_float ~eps:1e-5 "second weight" 2. (Float.abs k.Kruskal.weights.(1))

let test_mttkrp_matches_reference () =
  (* MTTKRP must equal the textbook X₍ₖ₎ · (⊙_{q≠k} U_q). *)
  let r = rng () in
  let t = random_tensor r [| 3; 4; 5 |] in
  let us = [| random_mat r 3 2; random_mat r 4 2; random_mat r 5 2 |] in
  for k = 0 to 2 do
    let reference = Mat.mul (Unfold.unfold t k) (Khatri_rao.chain_excluding us k) in
    check_mat ~eps:1e-8
      (Printf.sprintf "mode %d" k)
      reference (Cp_als.mttkrp t us k)
  done

let test_fit_monotone_nondecreasing () =
  (* The reported fit history should be (weakly) improving after the first
     couple of sweeps — ALS is a monotone algorithm on the residual. *)
  let r = rng () in
  let t = random_tensor r [| 5; 4; 3 |] in
  let _, info = Cp_als.decompose ~options:{ Cp_als.default_options with max_iter = 30 } ~rank:2 t in
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
      check_true "non-decreasing fit" (b >= a -. 1e-8);
      check_monotone rest
    | _ -> ()
  in
  check_monotone info.Cp_als.fit_history

let test_random_init () =
  let r = rng () in
  let t = random_tensor r [| 4; 4; 4 |] in
  let options = { Cp_als.default_options with init = Cp_als.Random 5 } in
  let k, _ = Cp_als.decompose ~options ~rank:2 t in
  Alcotest.(check int) "rank" 2 (Kruskal.rank k)

let test_noisy_recovery () =
  (* Dominant structure must survive mild noise. *)
  let r = rng () in
  let truth = separated_rank2 () in
  let noise = Tensor.scale 0.05 (random_tensor r [| 3; 4; 2 |]) in
  let t = Tensor.add (Kruskal.to_tensor truth) noise in
  let k, _ = Cp_als.decompose ~rank:2 t in
  (* Leading component should align with the weight-5 factor columns. *)
  let recovered = Kruskal.component k 0 in
  let truth0 = Kruskal.component truth 0 in
  Array.iteri
    (fun p v ->
      check_true
        (Printf.sprintf "alignment view %d" p)
        (Float.abs (Vec.dot v truth0.(p)) > 0.95))
    recovered

let test_rank_greater_than_dim () =
  (* Rank above a mode's dimension: random-padded HOSVD init must still work. *)
  let r = rng () in
  let t = random_tensor r [| 2; 5; 4 |] in
  let k, _ = Cp_als.decompose ~options:{ Cp_als.default_options with max_iter = 20 } ~rank:4 t in
  Alcotest.(check int) "rank kept" 4 (Kruskal.rank k)

let test_pool_size_determinism () =
  (* Same seed and options must give bit-for-bit identical factors whether
     the MTTKRP (and the GEMMs it feeds) run on 1, 2, or 4 domains. *)
  let t = random_tensor (rng ()) [| 6; 5; 4 |] in
  let options = { Cp_als.default_options with init = Cp_als.Random 7; max_iter = 25 } in
  let run size =
    Parallel.set_num_domains size;
    Parallel.set_sequential_cutoff 0;
    Fun.protect
      ~finally:(fun () ->
        Parallel.set_num_domains 1;
        Parallel.set_sequential_cutoff Parallel.default_cutoff)
      (fun () -> Cp_als.decompose ~options ~rank:3 t)
  in
  let bits v = Array.map Int64.bits_of_float v in
  let k1, info1 = run 1 in
  List.iter
    (fun size ->
      let k, info = run size in
      Alcotest.(check int)
        (Printf.sprintf "iterations at pool %d" size)
        info1.Cp_als.iterations info.Cp_als.iterations;
      Alcotest.(check (array int64))
        (Printf.sprintf "weights at pool %d" size)
        (bits k1.Kruskal.weights) (bits k.Kruskal.weights);
      Array.iteri
        (fun p u ->
          Alcotest.(check (array int64))
            (Printf.sprintf "factor %d at pool %d" p size)
            (bits k1.Kruskal.factors.(p).Mat.data)
            (bits u.Mat.data))
        k.Kruskal.factors)
    [ 2; 4 ]

let test_degenerate_columns_zeroed () =
  (* Subnormal-scale tensor: every ALS column norm underflows (≤ 1e-300), so
     normalization must zero the column along with its λ — a stale
     un-normalized column would survive into the returned factors (and be
     blown up to unit norm by Kruskal.normalize) otherwise. *)
  let r = rng () in
  let t = Tensor.scale 1e-305 (random_tensor r [| 3; 4; 2 |]) in
  let options = { Cp_als.default_options with init = Cp_als.Random 11; max_iter = 3 } in
  let k, _ = Cp_als.decompose ~options ~rank:2 t in
  Array.iter (fun w -> check_float "zero weight" 0. w) k.Kruskal.weights;
  Array.iter
    (fun u -> Array.iter (fun v -> check_float "zeroed factor entry" 0. v) u.Mat.data)
    k.Kruskal.factors

let test_invalid_rank () =
  let t = Tensor.create [| 2; 2 |] in
  Alcotest.check_raises "rank 0" (Invalid_argument "Cp_als.decompose: rank must be >= 1")
    (fun () -> ignore (Cp_als.decompose ~rank:0 t))

let test_higher_rank_fits_better () =
  let r = rng () in
  let t = random_tensor r [| 4; 4; 4 |] in
  let fit rank =
    (snd (Cp_als.decompose ~options:{ Cp_als.default_options with max_iter = 60 } ~rank t)).Cp_als.fit
  in
  check_true "rank 4 >= rank 1" (fit 4 >= fit 1 -. 0.02)

let () =
  Alcotest.run "cp_als"
    [ ( "recovery",
        [ Alcotest.test_case "rank-1 exact" `Quick test_exact_recovery_rank1;
          Alcotest.test_case "rank-2 exact" `Quick test_exact_recovery_rank2;
          Alcotest.test_case "noisy" `Quick test_noisy_recovery;
          Alcotest.test_case "rank > dim" `Quick test_rank_greater_than_dim;
          Alcotest.test_case "rank monotone" `Quick test_higher_rank_fits_better ] );
      ( "internals",
        [ Alcotest.test_case "mttkrp reference" `Quick test_mttkrp_matches_reference;
          Alcotest.test_case "fit monotone" `Quick test_fit_monotone_nondecreasing;
          Alcotest.test_case "random init" `Quick test_random_init;
          Alcotest.test_case "pool-size determinism" `Quick test_pool_size_determinism;
          Alcotest.test_case "degenerate columns zeroed" `Quick
            test_degenerate_columns_zeroed ] );
      ("errors", [ Alcotest.test_case "invalid rank" `Quick test_invalid_rank ]) ]
