(* The serving daemon's chaos suite: every robustness invariant of
   [lib/serve] proven in-process (Server.handle) and over real sockets
   (socketpair + serve_connection threads).  The headline guarantees:

   - no request hangs past its deadline (typed [R_deadline] instead);
   - queue overflow sheds typed replies while the daemon keeps serving;
   - a torn/corrupt/version-skewed hot swap never changes the serving
     version or the served projections (bitwise);
   - refit on unchanged data serves the bit-identical model at any pool
     size; a failed refit leaves the model untouched;
   - drain refuses new work, flushes in-flight jobs and snapshots;
   - recovery adopts the newest *valid* snapshot, skipping corrupt ones. *)

let check_true msg condition = Alcotest.(check bool) msg true condition

let mat_equal_bits a b =
  fst (Mat.dims a) = fst (Mat.dims b)
  && snd (Mat.dims a) = snd (Mat.dims b)
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Mat.data b.Mat.data

let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let fit_model ?(rank = 2) ?(seed = 3) () =
  Tcca.fit ~r:rank (synth_views ~views:3 ~dim:6 ~n:40 ~seed)

(* A retry policy with microscopic sleeps so give-up paths are instant. *)
let fast_retry = { Retry.default_policy with attempts = 2; base_delay = 1e-4; max_delay = 1e-3 }

let cfg ?(workers = 1) ?(queue = 8) ?state_dir ?(deadline = -1) () =
  { Server.default_config with
    workers;
    queue_capacity = queue;
    default_deadline_ms = deadline;
    state_dir;
    refit_retry = fast_retry;
    swap_retry = fast_retry;
    refit_options = { Cp_als.default_options with max_iter = 60 } }

let with_server ?model c f =
  let t = Server.create ?model c in
  Fun.protect ~finally:(fun () -> Server.drain_and_stop t) (fun () -> f t)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Protocol codec *)

let roundtrip_request r =
  match Protocol.request_of_string (Protocol.request_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.fail ("request roundtrip: " ^ e)

let roundtrip_response r =
  match Protocol.response_of_string (Protocol.response_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.fail ("response roundtrip: " ^ e)

let test_protocol_roundtrip () =
  let views = synth_views ~views:2 ~dim:3 ~n:5 ~seed:1 in
  (match roundtrip_request Protocol.Health with
  | Protocol.Health -> ()
  | _ -> Alcotest.fail "health");
  (match roundtrip_request (Protocol.Transform { deadline_ms = 250; views }) with
  | Protocol.Transform { deadline_ms = 250; views = vs } ->
    check_true "views survive" (Array.for_all2 mat_equal_bits views vs)
  | _ -> Alcotest.fail "transform");
  (match roundtrip_request (Protocol.Swap { path = "/tmp/x.tccm" }) with
  | Protocol.Swap { path = "/tmp/x.tccm" } -> ()
  | _ -> Alcotest.fail "swap");
  (match roundtrip_request Protocol.Drain with
  | Protocol.Drain -> ()
  | _ -> Alcotest.fail "drain");
  (match
     roundtrip_response
       (Protocol.R_health
          { version = 7; r = 2; dims = [| 3; 3 |]; queue_depth = 1; queue_capacity = 8;
            workers = 2; ingested = 40; since_fit = 0; draining = false })
   with
  | Protocol.R_health { version = 7; dims = [| 3; 3 |]; since_fit = 0; _ } -> ()
  | _ -> Alcotest.fail "r_health");
  (match roundtrip_response (Protocol.R_matrix views.(0)) with
  | Protocol.R_matrix m -> check_true "matrix bits" (mat_equal_bits views.(0) m)
  | _ -> Alcotest.fail "r_matrix");
  (match roundtrip_response (Protocol.R_scores [| 1.5; -2.25 |]) with
  | Protocol.R_scores [| 1.5; -2.25 |] -> ()
  | _ -> Alcotest.fail "r_scores");
  (match roundtrip_response (Protocol.R_deadline { stage = "serve.transform"; elapsed_ms = 12 }) with
  | Protocol.R_deadline { stage = "serve.transform"; elapsed_ms = 12 } -> ()
  | _ -> Alcotest.fail "r_deadline");
  (match roundtrip_response (Protocol.R_shed { depth = 8; capacity = 8 }) with
  | Protocol.R_shed { depth = 8; capacity = 8 } -> ()
  | _ -> Alcotest.fail "r_shed");
  (* Garbage never parses into a request. *)
  check_true "garbage refused" (Result.is_error (Protocol.request_of_string "\x63rud"));
  check_true "empty refused" (Result.is_error (Protocol.request_of_string ""))

(* ------------------------------------------------------------------ *)
(* Model files *)

let test_model_store_roundtrip () =
  let m = fit_model () in
  let path = Filename.temp_file "tccm" ".tccm" in
  Model_store.save ~path m;
  (match Model_store.load ~path with
  | Ok m' ->
    let x = synth_views ~views:3 ~dim:6 ~n:9 ~seed:11 in
    check_true "projections survive bitwise"
      (mat_equal_bits (Tcca.transform m x) (Tcca.transform m' x))
  | Error e -> Alcotest.fail (Checkpoint.load_error_to_string e));
  Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_model_store_rejects_damage () =
  let m = fit_model () in
  let path = Filename.temp_file "tccm" ".tccm" in
  Model_store.save ~path m;
  let good = read_file path in
  (* Torn: physically truncated file. *)
  write_file path (String.sub good 0 (String.length good / 3));
  (match Model_store.load ~path with
  | Error Checkpoint.Truncated -> ()
  | _ -> Alcotest.fail "truncated file must be Truncated");
  (* Corrupt: one payload byte flipped — CRC catches it. *)
  write_file path
    (String.mapi
       (fun i c -> if i = 25 then Char.chr (Char.code c lxor 0x40) else c)
       good);
  (match Model_store.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | _ -> Alcotest.fail "bit flip must be Corrupt");
  (* Version skew: header version bumped. *)
  write_file path
    (String.mapi (fun i c -> if i = 4 then Char.chr (Char.code c + 1) else c) good);
  (match Model_store.load ~path with
  | Error (Checkpoint.Version_mismatch { direction = Checkpoint.Newer; _ }) -> ()
  | _ -> Alcotest.fail "bumped version must be Newer mismatch");
  (* Non-finite payload: well-framed but poisoned values. *)
  let parts = Tcca.to_parts m in
  parts.Tcca.pt_correlations.(0) <- Float.nan;
  Model_store.save ~path (Tcca.of_parts parts);
  (match Model_store.load ~path with
  | Error (Checkpoint.Corrupt what) ->
    check_true "names the poison" (what = "non-finite model values")
  | _ -> Alcotest.fail "NaN model must be Corrupt");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Engine: serving correctness *)

let test_transform_matches_library () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:7 ~seed:21 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix z ->
        check_true "server transform ≡ library transform"
          (mat_equal_bits z (Tcca.transform m x))
      | _ -> Alcotest.fail "expected R_matrix")

let test_predict_formula () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:22 in
      match Server.handle t (Protocol.Predict { deadline_ms = -1; views = x }) with
      | Protocol.R_scores s ->
        let zs = Array.mapi (fun p xp -> Tcca.transform_view m p xp) x in
        let lambda = Tcca.correlations m in
        let expect =
          Array.init 5 (fun i ->
              let acc = ref 0. in
              Array.iteri
                (fun k l ->
                  let prod = ref l in
                  Array.iter (fun z -> prod := !prod *. Mat.get z k i) zs;
                  acc := !acc +. !prod)
                lambda;
              !acc)
        in
        check_true "scores = Σₖ λₖ Πₚ Zₚ[k,i]"
          (Array.for_all2 (fun a b -> a = b) s expect)
      | _ -> Alcotest.fail "expected R_scores")

let test_cold_start_refuses_typed () =
  with_server (cfg ()) (fun t ->
      check_true "cold version is 0" (Server.version t = 0);
      let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:1 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_error { code = "no-model"; _ } -> ()
      | _ -> Alcotest.fail "cold transform must be a typed no-model refusal")

(* ------------------------------------------------------------------ *)
(* Deadlines *)

let test_deadline_zero_expires_not_hangs () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:7 ~seed:23 in
      (match Server.handle t (Protocol.Transform { deadline_ms = 0; views = x }) with
      | Protocol.R_deadline { stage; _ } ->
        check_true "stage names the serve path" (stage = "serve.transform")
      | _ -> Alcotest.fail "deadline 0 must reply R_deadline");
      (* The daemon is unharmed: the next request computes normally. *)
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix z -> check_true "still serving" (mat_equal_bits z (Tcca.transform m x))
      | _ -> Alcotest.fail "server must keep serving after a deadline miss")

let test_deadline_counts_queue_wait () =
  (* No workers: a job can only wait.  Its budget starts at enqueue, so the
     wait itself expires it — drain answers it without compute ever running. *)
  let m = fit_model () in
  let t = Server.create ~model:m (cfg ~workers:0 ~queue:4 ()) in
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:24 in
  let resp = ref None in
  let th =
    Thread.create
      (fun () -> resp := Some (Server.handle t (Protocol.Transform { deadline_ms = 10; views = x })))
      ()
  in
  Thread.delay 0.15;
  Server.drain_and_stop t;
  Thread.join th;
  match !resp with
  | Some (Protocol.R_error { code = "draining"; _ }) -> ()
  | Some _ | None -> Alcotest.fail "queued job must be answered at drain, never hung"

(* ------------------------------------------------------------------ *)
(* Load shedding *)

let test_queue_overflow_sheds () =
  let m = fit_model () in
  (* workers = 0: nothing drains the queue, so capacity 2 fills with the
     first two requests and the third must shed. *)
  let t = Server.create ~model:m (cfg ~workers:0 ~queue:2 ()) in
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:25 in
  let blocked = Array.init 2 (fun _ ->
      Thread.create
        (fun () ->
          ignore (Server.handle t (Protocol.Transform { deadline_ms = -1; views = x })))
        ())
  in
  Thread.delay 0.15;
  (match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
  | Protocol.R_shed { depth; capacity } ->
    check_true "reports full queue" (depth = 2 && capacity = 2)
  | _ -> Alcotest.fail "third request must shed");
  (* Shedding didn't kill the daemon: health is still answered inline. *)
  (match Server.handle t Protocol.Health with
  | Protocol.R_health { queue_depth = 2; _ } -> ()
  | _ -> Alcotest.fail "health must report the full queue");
  Server.drain_and_stop t;
  Array.iter Thread.join blocked

let test_queue_full_inject () =
  let m = fit_model () in
  with_server ~model:m (cfg ~workers:1 ~queue:8 ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:26 in
      Robust.Inject.with_stage Robust.Inject.Queue_full (fun () ->
          match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
          | Protocol.R_shed _ -> ()
          | _ -> Alcotest.fail "Queue_full inject must shed");
      (* Disarmed: service resumes. *)
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix _ -> ()
      | _ -> Alcotest.fail "service must resume after inject clears")

(* ------------------------------------------------------------------ *)
(* Hot swap *)

let swap_fixture () =
  let serving = fit_model ~seed:3 () in
  let candidate = fit_model ~seed:4 () in
  let path = Filename.temp_file "swap" ".tccm" in
  Model_store.save ~path candidate;
  (serving, candidate, path)

let test_swap_success () =
  let serving, candidate, path = swap_fixture () in
  with_server ~model:serving (cfg ()) (fun t ->
      (match Server.handle t (Protocol.Swap { path }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | _ -> Alcotest.fail "valid swap must install as version 2");
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:31 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix z ->
        check_true "serves the swapped-in model"
          (mat_equal_bits z (Tcca.transform candidate x))
      | _ -> Alcotest.fail "transform after swap");
  Sys.remove path

let unchanged_after_bad_swap t serving x code path =
  (match Server.handle t (Protocol.Swap { path }) with
  | Protocol.R_error { code = c; _ } when c = code -> ()
  | Protocol.R_error { code = c; _ } ->
    Alcotest.fail (Printf.sprintf "expected %s, got %s" code c)
  | _ -> Alcotest.fail "bad swap must be refused");
  check_true "version unchanged" (Server.version t = 1);
  match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
  | Protocol.R_matrix z ->
    check_true "projections unchanged bitwise" (mat_equal_bits z (Tcca.transform serving x))
  | _ -> Alcotest.fail "transform after refused swap"

let test_torn_swap_rolls_back () =
  let serving, _, path = swap_fixture () in
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:32 in
      Robust.Inject.with_stage Robust.Inject.Torn_swap (fun () ->
          unchanged_after_bad_swap t serving x "torn" path);
      (* The same file swaps fine once the tear is gone. *)
      match Server.handle t (Protocol.Swap { path }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | _ -> Alcotest.fail "healthy retry of the same swap must succeed");
  Sys.remove path

let test_corrupt_swap_rolls_back () =
  let serving, _, path = swap_fixture () in
  let good = read_file path in
  write_file path
    (String.mapi (fun i c -> if i = 30 then Char.chr (Char.code c lxor 0x10) else c) good);
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:33 in
      unchanged_after_bad_swap t serving x "corrupt" path);
  Sys.remove path

let test_version_skew_swap_refused () =
  let serving, _, path = swap_fixture () in
  let good = read_file path in
  write_file path
    (String.mapi (fun i c -> if i = 4 then Char.chr (Char.code c + 1) else c) good);
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:34 in
      unchanged_after_bad_swap t serving x "version-newer" path);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Ingest + refit *)

let test_ingest_then_refit_cold () =
  with_server (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:50 ~seed:41 in
      (match Server.handle t (Protocol.Ingest { views = batch }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      (match Server.handle t Protocol.Health with
      | Protocol.R_health { ingested = 50; since_fit = 50; version = 0; _ } -> ()
      | _ -> Alcotest.fail "health must count ingested samples");
      (match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
      | Protocol.R_ok { version = 1; _ } -> ()
      | r ->
        Alcotest.fail
          ("cold refit must install version 1, got " ^ Protocol.response_to_string r));
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:42 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix _ -> ()
      | _ -> Alcotest.fail "must serve after cold refit")

let test_refit_no_new_data_retains_bitwise () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:6 ~seed:43 in
      let before =
        match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
        | Protocol.R_matrix z -> z
        | _ -> Alcotest.fail "transform"
      in
      (match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
      | Protocol.R_ok { version = 1; note } ->
        check_true "says retained"
          (String.length note >= 8 && String.sub note 0 2 = "no")
      | _ -> Alcotest.fail "refit with nothing new must retain");
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix after ->
        check_true "bit-identical serving model" (mat_equal_bits before after)
      | _ -> Alcotest.fail "transform after retained refit")

let test_warm_refit_installs_and_serves () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:60 ~seed:44 in
      (match Server.handle t (Protocol.Ingest { views = batch }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      (match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
      | Protocol.R_ok { version = 2; note } ->
        check_true "refit note mentions install"
          (String.length note > 0)
      | r -> Alcotest.fail ("warm refit must install v2: " ^ Protocol.response_to_string r));
      (* Rank is inherited from the serving model, not cfg.rank. *)
      match Server.handle t Protocol.Health with
      | Protocol.R_health { r = 2; since_fit = 0; _ } -> ()
      | _ -> Alcotest.fail "health after refit")

let test_warm_refit_pool_independent () =
  (* The same ingest+refit sequence at pool 1 and pool 4 must install
     bitwise-identical models — Parallel's pool-size-independence contract
     carried through the whole serving stack. *)
  let saved = Parallel.num_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_num_domains saved)
    (fun () ->
      let run pool =
        Parallel.set_num_domains pool;
        let m = fit_model () in
        with_server ~model:m (cfg ()) (fun t ->
            let batch = synth_views ~views:3 ~dim:6 ~n:60 ~seed:45 in
            (match Server.handle t (Protocol.Ingest { views = batch }) with
            | Protocol.R_ok _ -> ()
            | _ -> Alcotest.fail "ingest");
            (match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
            | Protocol.R_ok { version = 2; _ } -> ()
            | r -> Alcotest.fail ("refit: " ^ Protocol.response_to_string r));
            let x = synth_views ~views:3 ~dim:6 ~n:8 ~seed:46 in
            match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
            | Protocol.R_matrix z -> z
            | _ -> Alcotest.fail "transform")
      in
      check_true "pool 1 ≡ pool 4 bitwise" (mat_equal_bits (run 1) (run 4)))

let test_refit_nan_leaves_model_untouched () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:30 ~seed:47 in
      (match Server.handle t (Protocol.Ingest { views = batch }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:48 in
      let before =
        match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
        | Protocol.R_matrix z -> z
        | _ -> Alcotest.fail "transform"
      in
      Robust.Inject.with_stage Robust.Inject.Refit_nan (fun () ->
          match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
          | Protocol.R_error { code = "refit-failed"; message } ->
            check_true "mentions give-up accounting"
              (String.length message > 0)
          | r -> Alcotest.fail ("poisoned refit: " ^ Protocol.response_to_string r));
      check_true "version unchanged" (Server.version t = 1);
      (match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix after ->
        check_true "pre-refit model still serving, bitwise" (mat_equal_bits before after)
      | _ -> Alcotest.fail "transform after failed refit");
      (* The poison is gone: the retained samples refit fine now. *)
      match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | r -> Alcotest.fail ("recovery refit: " ^ Protocol.response_to_string r))

(* ------------------------------------------------------------------ *)
(* Drain + recovery *)

let test_drain_refuses_then_flushes () =
  let m = fit_model () in
  let dir = tmp_dir "tccad-drain" in
  let t = Server.create ~model:m (cfg ~state_dir:dir ()) in
  (match Server.handle t Protocol.Drain with
  | Protocol.R_ok { note = "draining"; _ } -> ()
  | _ -> Alcotest.fail "drain ack");
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:51 in
  (match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
  | Protocol.R_error { code = "draining"; _ } -> ()
  | _ -> Alcotest.fail "work during drain must be refused");
  (* Health keeps answering so orchestrators can watch the drain. *)
  (match Server.handle t Protocol.Health with
  | Protocol.R_health { draining = true; _ } -> ()
  | _ -> Alcotest.fail "health during drain");
  Server.drain_and_stop t;
  check_true "snapshot written at drain"
    (Sys.file_exists (Filename.concat dir "model-v000001.tccm"));
  rm_rf dir

let test_recovery_from_newest_valid () =
  let dir = tmp_dir "tccad-recover" in
  let m1 = fit_model ~seed:3 () in
  let m2 = fit_model ~seed:4 () in
  Model_store.save ~path:(Filename.concat dir "model-v000001.tccm") m1;
  Model_store.save ~path:(Filename.concat dir "model-v000002.tccm") m2;
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "adopts newest version" (Server.version t = 2);
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:52 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix z ->
        check_true "serves the newest model bitwise" (mat_equal_bits z (Tcca.transform m2 x))
      | _ -> Alcotest.fail "transform after recovery");
  rm_rf dir

let test_recovery_skips_corrupt_newest () =
  let dir = tmp_dir "tccad-skip" in
  let m1 = fit_model ~seed:3 () in
  let m2 = fit_model ~seed:4 () in
  let p1 = Filename.concat dir "model-v000001.tccm" in
  let p2 = Filename.concat dir "model-v000002.tccm" in
  Model_store.save ~path:p1 m1;
  Model_store.save ~path:p2 m2;
  (* Tear the newest snapshot: recovery must fall back to v1, loudly. *)
  let good = read_file p2 in
  write_file p2 (String.sub good 0 (String.length good / 2));
  Robust.clear_warnings ();
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "falls back to the older valid snapshot" (Server.version t = 1);
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:53 in
      match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
      | Protocol.R_matrix z ->
        check_true "serves v1 bitwise" (mat_equal_bits z (Tcca.transform m1 x))
      | _ -> Alcotest.fail "transform after degraded recovery");
  rm_rf dir

let test_recovery_all_corrupt_degrades_cold () =
  let dir = tmp_dir "tccad-cold" in
  write_file (Filename.concat dir "model-v000003.tccm") "TCCMgarbage";
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "cold start" (Server.version t = 0 && Server.model t = None));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Socket layer *)

let with_connection t f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Server.serve_connection t server) () in
  let out =
    Fun.protect
      ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
      (fun () -> f client)
  in
  Thread.join th;
  out

let test_socket_roundtrip () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      with_connection t (fun fd ->
          (match Protocol.call fd Protocol.Health with
          | Protocol.R_health { version = 1; r = 2; _ } -> ()
          | _ -> Alcotest.fail "health over socket");
          let x = synth_views ~views:3 ~dim:6 ~n:6 ~seed:61 in
          match Protocol.call fd (Protocol.Transform { deadline_ms = -1; views = x }) with
          | Protocol.R_matrix z ->
            check_true "socket transform ≡ library" (mat_equal_bits z (Tcca.transform m x))
          | _ -> Alcotest.fail "transform over socket"))

let test_slow_client_dropped_not_wedged () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      Robust.Inject.with_stage Robust.Inject.Slow_client (fun () ->
          let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let th = Thread.create (fun () -> Server.serve_connection t server) () in
          (* The connection thread reports Timeout immediately and drops the
             connection — joining here means no thread was wedged. *)
          Thread.join th;
          (try Unix.close client with Unix.Unix_error _ -> ()));
      (* A healthy client right after is served normally. *)
      with_connection t (fun fd ->
          match Protocol.call fd Protocol.Health with
          | Protocol.R_health _ -> ()
          | _ -> Alcotest.fail "health after dropped slow client"))

let test_socket_garbage_gets_typed_error () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      with_connection t (fun fd ->
          Protocol.write_frame fd "\xFFnot a request";
          match Protocol.read_frame fd with
          | Protocol.Frame body -> (
            match Protocol.response_of_string body with
            | Ok (Protocol.R_error { code = "bad-request"; _ }) -> ()
            | _ -> Alcotest.fail "garbage must get a typed bad-request")
          | _ -> Alcotest.fail "no reply to garbage"))

(* ------------------------------------------------------------------ *)
(* qcheck: retained refit is bit-stable at any pool size *)

let qcheck_retained_refit_pool_stable =
  QCheck.Test.make ~count:8 ~name:"refit(no new data) serves bit-identical at pools 1/4"
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, rank) ->
      let saved = Parallel.num_domains () in
      Fun.protect
        ~finally:(fun () -> Parallel.set_num_domains saved)
        (fun () ->
          let run pool =
            Parallel.set_num_domains pool;
            let m = Tcca.fit ~r:rank (synth_views ~views:3 ~dim:5 ~n:30 ~seed) in
            with_server ~model:m (cfg ()) (fun t ->
                (match Server.handle t (Protocol.Refit { deadline_ms = -1 }) with
                | Protocol.R_ok { version = 1; _ } -> ()
                | _ -> Alcotest.fail "retained refit");
                let x = synth_views ~views:3 ~dim:5 ~n:6 ~seed:(seed + 1) in
                match Server.handle t (Protocol.Transform { deadline_ms = -1; views = x }) with
                | Protocol.R_matrix z -> z
                | _ -> Alcotest.fail "transform")
          in
          mat_equal_bits (run 1) (run 4)))

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "codec roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "garbage over socket" `Quick test_socket_garbage_gets_typed_error ] );
      ( "model-store",
        [ Alcotest.test_case "roundtrip" `Quick test_model_store_roundtrip;
          Alcotest.test_case "rejects damage" `Quick test_model_store_rejects_damage ] );
      ( "serving",
        [ Alcotest.test_case "transform ≡ library" `Quick test_transform_matches_library;
          Alcotest.test_case "predict formula" `Quick test_predict_formula;
          Alcotest.test_case "cold start typed refusal" `Quick test_cold_start_refuses_typed;
          Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip ] );
      ( "deadlines",
        [ Alcotest.test_case "deadline 0 expires, never hangs" `Quick
            test_deadline_zero_expires_not_hangs;
          Alcotest.test_case "queue wait counts" `Quick test_deadline_counts_queue_wait ] );
      ( "shedding",
        [ Alcotest.test_case "overflow sheds" `Quick test_queue_overflow_sheds;
          Alcotest.test_case "Queue_full inject" `Quick test_queue_full_inject;
          Alcotest.test_case "slow client dropped" `Quick test_slow_client_dropped_not_wedged ] );
      ( "hot-swap",
        [ Alcotest.test_case "valid swap installs" `Quick test_swap_success;
          Alcotest.test_case "torn swap rolls back" `Quick test_torn_swap_rolls_back;
          Alcotest.test_case "corrupt swap rolls back" `Quick test_corrupt_swap_rolls_back;
          Alcotest.test_case "version skew refused" `Quick test_version_skew_swap_refused ] );
      ( "refit",
        [ Alcotest.test_case "cold ingest+refit" `Quick test_ingest_then_refit_cold;
          Alcotest.test_case "no new data retained bitwise" `Quick
            test_refit_no_new_data_retains_bitwise;
          Alcotest.test_case "warm refit installs" `Quick test_warm_refit_installs_and_serves;
          Alcotest.test_case "warm refit pool-independent" `Quick
            test_warm_refit_pool_independent;
          Alcotest.test_case "Refit_nan leaves model" `Quick
            test_refit_nan_leaves_model_untouched;
          QCheck_alcotest.to_alcotest qcheck_retained_refit_pool_stable ] );
      ( "drain-recovery",
        [ Alcotest.test_case "drain refuses and flushes" `Quick test_drain_refuses_then_flushes;
          Alcotest.test_case "recovers newest valid" `Quick test_recovery_from_newest_valid;
          Alcotest.test_case "skips corrupt newest" `Quick test_recovery_skips_corrupt_newest;
          Alcotest.test_case "all corrupt -> cold" `Quick test_recovery_all_corrupt_degrades_cold ] ) ]
