(* The serving daemon's chaos suite: every robustness invariant of
   [lib/serve] proven in-process (Server.handle) and over real sockets
   (socketpair + serve_connection threads).  The headline guarantees:

   - no request hangs past its deadline (typed [R_deadline] instead);
   - queue overflow sheds typed replies while the daemon keeps serving;
   - a torn/corrupt/version-skewed hot swap never changes the serving
     version or the served projections (bitwise);
   - refit on unchanged data serves the bit-identical model at any pool
     size; a failed refit leaves the model untouched;
   - drain refuses new work, flushes in-flight jobs and snapshots;
   - recovery adopts the newest *valid* snapshot, skipping corrupt ones;
   - and, multi-model (PR 9): every fault above is *contained* — a torn
     swap, poisoned refit, crashed worker, tripped breaker, exhausted
     respawn budget or corrupt state dir on model A leaves model B's
     version counter and served projections bitwise unchanged, at any
     pool size; PR-8 wire frames (no model_id) still drive the daemon. *)

let check_true msg condition = Alcotest.(check bool) msg true condition

let mat_equal_bits a b =
  fst (Mat.dims a) = fst (Mat.dims b)
  && snd (Mat.dims a) = snd (Mat.dims b)
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Mat.data b.Mat.data

let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let fit_model ?(rank = 2) ?(seed = 3) () =
  Tcca.fit ~r:rank (synth_views ~views:3 ~dim:6 ~n:40 ~seed)

(* A retry policy with microscopic sleeps so give-up paths are instant. *)
let fast_retry = { Retry.default_policy with attempts = 2; base_delay = 1e-4; max_delay = 1e-3 }

let cfg ?(workers = 1) ?(queue = 8) ?state_dir ?(deadline = -1) ?breaker ?max_respawns () =
  { Server.default_config with
    workers;
    queue_capacity = queue;
    default_deadline_ms = deadline;
    state_dir;
    refit_retry = fast_retry;
    swap_retry = fast_retry;
    refit_options = { Cp_als.default_options with max_iter = 60 };
    breaker = (match breaker with Some b -> b | None -> Breaker.default_config);
    max_respawns =
      (match max_respawns with Some n -> n | None -> Server.default_config.Server.max_respawns) }

let with_server ?model c f =
  let t = Server.create ?model c in
  Fun.protect ~finally:(fun () -> Server.drain_and_stop t) (fun () -> f t)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Shorthand: single-model requests against the PR-8 "default" slot. *)
let transform ?(model_id = "default") ?(deadline_ms = -1) t x =
  Server.handle t (Protocol.Transform { deadline_ms; views = x; model_id })

let expect_matrix msg = function
  | Protocol.R_matrix z -> z
  | r -> Alcotest.fail (msg ^ ": " ^ Protocol.response_to_string r)

let model_health t id =
  match Server.handle t (Protocol.Model_health { model_id = id }) with
  | Protocol.R_model_health h -> h
  | r -> Alcotest.fail ("model-health: " ^ Protocol.response_to_string r)

(* Register a second model on a live server through the production path: a
   durable model file hot-swapped into a fresh registry entry (own queue,
   workers, breaker). *)
let install_model t id m =
  let path = Filename.temp_file "tccm-install" ".tccm" in
  Model_store.save ~path m;
  (match Server.handle t (Protocol.Swap { path; model_id = id }) with
  | Protocol.R_ok _ -> ()
  | r -> Alcotest.fail ("install_model: " ^ Protocol.response_to_string r));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Protocol codec *)

let roundtrip_request r =
  match Protocol.request_of_string (Protocol.request_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.fail ("request roundtrip: " ^ e)

let roundtrip_response r =
  match Protocol.response_of_string (Protocol.response_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.fail ("response roundtrip: " ^ e)

let test_protocol_roundtrip () =
  let views = synth_views ~views:2 ~dim:3 ~n:5 ~seed:1 in
  (match roundtrip_request Protocol.Health with
  | Protocol.Health -> ()
  | _ -> Alcotest.fail "health");
  (match
     roundtrip_request (Protocol.Transform { deadline_ms = 250; views; model_id = "m1" })
   with
  | Protocol.Transform { deadline_ms = 250; views = vs; model_id = "m1" } ->
    check_true "views survive" (Array.for_all2 mat_equal_bits views vs)
  | _ -> Alcotest.fail "transform");
  (match roundtrip_request (Protocol.Swap { path = "/tmp/x.tccm"; model_id = "default" }) with
  | Protocol.Swap { path = "/tmp/x.tccm"; model_id = "default" } -> ()
  | _ -> Alcotest.fail "swap");
  (match roundtrip_request (Protocol.Drain { model_id = "" }) with
  | Protocol.Drain { model_id = "" } -> ()
  | _ -> Alcotest.fail "drain");
  (match roundtrip_request (Protocol.Drain { model_id = "m2" }) with
  | Protocol.Drain { model_id = "m2" } -> ()
  | _ -> Alcotest.fail "drain m2");
  (match roundtrip_request Protocol.List_models with
  | Protocol.List_models -> ()
  | _ -> Alcotest.fail "list_models");
  (match roundtrip_request (Protocol.Model_health { model_id = "m3" }) with
  | Protocol.Model_health { model_id = "m3" } -> ()
  | _ -> Alcotest.fail "model_health");
  (match
     roundtrip_response
       (Protocol.R_health
          { version = 7; r = 2; dims = [| 3; 3 |]; queue_depth = 1; queue_capacity = 8;
            workers = 2; ingested = 40; since_fit = 0; draining = false })
   with
  | Protocol.R_health { version = 7; dims = [| 3; 3 |]; since_fit = 0; _ } -> ()
  | _ -> Alcotest.fail "r_health");
  (match roundtrip_response (Protocol.R_matrix views.(0)) with
  | Protocol.R_matrix m -> check_true "matrix bits" (mat_equal_bits views.(0) m)
  | _ -> Alcotest.fail "r_matrix");
  (match roundtrip_response (Protocol.R_scores [| 1.5; -2.25 |]) with
  | Protocol.R_scores [| 1.5; -2.25 |] -> ()
  | _ -> Alcotest.fail "r_scores");
  (match roundtrip_response (Protocol.R_deadline { stage = "serve.transform"; elapsed_ms = 12 }) with
  | Protocol.R_deadline { stage = "serve.transform"; elapsed_ms = 12 } -> ()
  | _ -> Alcotest.fail "r_deadline");
  (match roundtrip_response (Protocol.R_shed { depth = 8; capacity = 8 }) with
  | Protocol.R_shed { depth = 8; capacity = 8 } -> ()
  | _ -> Alcotest.fail "r_shed");
  (match roundtrip_response (Protocol.R_unavailable { model_id = "m1"; retry_after_ms = 750 }) with
  | Protocol.R_unavailable { model_id = "m1"; retry_after_ms = 750 } -> ()
  | _ -> Alcotest.fail "r_unavailable");
  (match
     roundtrip_response
       (Protocol.R_models
          [| { Protocol.mi_id = "a"; mi_version = 3; mi_r = 2; mi_breaker = "closed";
               mi_draining = false };
             { Protocol.mi_id = "b"; mi_version = 0; mi_r = 0; mi_breaker = "open";
               mi_draining = true } |])
   with
  | Protocol.R_models [| { Protocol.mi_id = "a"; mi_version = 3; _ };
                         { Protocol.mi_id = "b"; mi_breaker = "open"; mi_draining = true; _ } |]
    -> ()
  | _ -> Alcotest.fail "r_models");
  (match
     roundtrip_response
       (Protocol.R_model_health
          { Protocol.mh_id = "a"; mh_version = 2; mh_r = 2; mh_dims = [| 6; 6; 6 |];
            mh_queue_depth = 1; mh_queue_capacity = 8; mh_workers = 2;
            mh_breaker = "half-open"; mh_retry_after_ms = 0; mh_failures = 0;
            mh_respawns = 1; mh_ingested = 40; mh_since_fit = 0;
            mh_last_refit = "installed v2"; mh_draining = false })
   with
  | Protocol.R_model_health
      { Protocol.mh_id = "a"; mh_breaker = "half-open"; mh_respawns = 1;
        mh_last_refit = "installed v2"; _ } -> ()
  | _ -> Alcotest.fail "r_model_health");
  (* Garbage never parses into a request. *)
  check_true "garbage refused" (Result.is_error (Protocol.request_of_string "\x63rud"));
  check_true "empty refused" (Result.is_error (Protocol.request_of_string ""))

(* PR-8 frames carry no model_id.  Hand-encode them with the same Wire
   primitives the old encoder used, and check the decoder maps the absent
   field to "default" ("" for Drain — daemon-wide, the old semantics). *)
let legacy_body build =
  let b = Buffer.create 128 in
  build b;
  Buffer.contents b

let add_legacy_views b views =
  Checkpoint.Wire.add_int b (Array.length views);
  Array.iter
    (fun (m : Mat.t) ->
      Checkpoint.Wire.add_int b m.Mat.rows;
      Checkpoint.Wire.add_int b m.Mat.cols;
      Checkpoint.Wire.add_f_array b m.Mat.data)
    views

let test_wire_compat_decodes_legacy () =
  let views = synth_views ~views:2 ~dim:3 ~n:4 ~seed:2 in
  (match
     Protocol.request_of_string
       (legacy_body (fun b ->
            Checkpoint.Wire.add_int b 2;
            Checkpoint.Wire.add_int b 125;
            add_legacy_views b views))
   with
  | Ok (Protocol.Transform { deadline_ms = 125; views = vs; model_id = "default" }) ->
    check_true "legacy transform views" (Array.for_all2 mat_equal_bits views vs)
  | _ -> Alcotest.fail "legacy transform must target \"default\"");
  (match
     Protocol.request_of_string
       (legacy_body (fun b ->
            Checkpoint.Wire.add_int b 4;
            add_legacy_views b views))
   with
  | Ok (Protocol.Ingest { model_id = "default"; _ }) -> ()
  | _ -> Alcotest.fail "legacy ingest must target \"default\"");
  (match
     Protocol.request_of_string
       (legacy_body (fun b ->
            Checkpoint.Wire.add_int b 5;
            Checkpoint.Wire.add_int b (-1)))
   with
  | Ok (Protocol.Refit { deadline_ms = -1; model_id = "default" }) -> ()
  | _ -> Alcotest.fail "legacy refit must target \"default\"");
  (match
     Protocol.request_of_string
       (legacy_body (fun b ->
            Checkpoint.Wire.add_int b 6;
            Checkpoint.Wire.add_string b "/tmp/m.tccm"))
   with
  | Ok (Protocol.Swap { path = "/tmp/m.tccm"; model_id = "default" }) -> ()
  | _ -> Alcotest.fail "legacy swap must target \"default\"");
  (match
     Protocol.request_of_string (legacy_body (fun b -> Checkpoint.Wire.add_int b 7))
   with
  | Ok (Protocol.Drain { model_id = "" }) -> ()
  | _ -> Alcotest.fail "legacy drain must be daemon-wide")

let test_wire_compat_legacy_client_served () =
  (* End to end: a byte-for-byte PR-8 client frame over a real socket is
     served by the multi-model daemon from "default". *)
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let th = Thread.create (fun () -> Event_loop.serve_connection t server) () in
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:9 in
      Protocol.write_frame client
        (legacy_body (fun b ->
             Checkpoint.Wire.add_int b 2;
             Checkpoint.Wire.add_int b (-1);
             add_legacy_views b x));
      (match Protocol.read_frame client with
      | Protocol.Frame body -> (
        match Protocol.response_of_string body with
        | Ok (Protocol.R_matrix z) ->
          check_true "legacy client served from default, bitwise"
            (mat_equal_bits z (Tcca.transform m x))
        | _ -> Alcotest.fail "legacy transform must be served")
      | _ -> Alcotest.fail "no reply to legacy frame");
      (try Unix.close client with Unix.Unix_error _ -> ());
      Thread.join th)

(* ------------------------------------------------------------------ *)
(* Model files *)

let test_model_store_roundtrip () =
  let m = fit_model () in
  let path = Filename.temp_file "tccm" ".tccm" in
  Model_store.save ~path m;
  (match Model_store.load ~path with
  | Ok m' ->
    let x = synth_views ~views:3 ~dim:6 ~n:9 ~seed:11 in
    check_true "projections survive bitwise"
      (mat_equal_bits (Tcca.transform m x) (Tcca.transform m' x))
  | Error e -> Alcotest.fail (Checkpoint.load_error_to_string e));
  Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_model_store_rejects_damage () =
  let m = fit_model () in
  let path = Filename.temp_file "tccm" ".tccm" in
  Model_store.save ~path m;
  let good = read_file path in
  (* Torn: physically truncated file. *)
  write_file path (String.sub good 0 (String.length good / 3));
  (match Model_store.load ~path with
  | Error Checkpoint.Truncated -> ()
  | _ -> Alcotest.fail "truncated file must be Truncated");
  (* Corrupt: one payload byte flipped — CRC catches it. *)
  write_file path
    (String.mapi
       (fun i c -> if i = 25 then Char.chr (Char.code c lxor 0x40) else c)
       good);
  (match Model_store.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | _ -> Alcotest.fail "bit flip must be Corrupt");
  (* Version skew: header version bumped. *)
  write_file path
    (String.mapi (fun i c -> if i = 4 then Char.chr (Char.code c + 1) else c) good);
  (match Model_store.load ~path with
  | Error (Checkpoint.Version_mismatch { direction = Checkpoint.Newer; _ }) -> ()
  | _ -> Alcotest.fail "bumped version must be Newer mismatch");
  (* Non-finite payload: well-framed but poisoned values. *)
  let parts = Tcca.to_parts m in
  parts.Tcca.pt_correlations.(0) <- Float.nan;
  Model_store.save ~path (Tcca.of_parts parts);
  (match Model_store.load ~path with
  | Error (Checkpoint.Corrupt what) ->
    check_true "names the poison" (what = "non-finite model values")
  | _ -> Alcotest.fail "NaN model must be Corrupt");
  Sys.remove path

let test_torn_model_write_refused_on_load () =
  (* [Torn_model_write] simulates the power-loss the durable write protocol
     (fsync temp, rename, fsync dir) exists to prevent: a half-written file
     at the final path.  The loader must refuse it; a healthy durable save
     then replaces the wreck atomically. *)
  let m = fit_model () in
  let path = Filename.temp_file "tccm-torn" ".tccm" in
  Robust.Inject.with_stage Robust.Inject.Torn_model_write (fun () ->
      Model_store.save ~path m);
  (match Model_store.load ~path with
  | Error Checkpoint.Truncated -> ()
  | Ok _ -> Alcotest.fail "a torn write must never load"
  | Error e -> Alcotest.fail ("expected Truncated, got " ^ Checkpoint.load_error_to_string e));
  Model_store.save ~path m;
  (match Model_store.load ~path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("durable rewrite: " ^ Checkpoint.load_error_to_string e));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Circuit breaker state machine (fake clock — no sleeping) *)

let test_breaker_state_machine () =
  let now = ref 0. in
  let b =
    Breaker.create ~now:(fun () -> !now)
      { Breaker.failure_threshold = 3; open_cooldown_s = 5.; half_open_successes = 2 }
  in
  check_true "starts closed" (Breaker.state_name b = "closed");
  check_true "closed admits" (Breaker.admit b = Breaker.Admit);
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  check_true "two failures: still closed" (Breaker.state_name b = "closed");
  check_true "counts consecutive failures" (Breaker.failures b = 2);
  Breaker.record b ~ok:true;
  check_true "success resets the count" (Breaker.failures b = 0);
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  check_true "threshold trips open" (Breaker.state_name b = "open");
  (match Breaker.admit b with
  | Breaker.Reject { retry_after_ms } ->
    check_true "full cooldown reported" (retry_after_ms = 5000)
  | _ -> Alcotest.fail "open must reject");
  now := 2.;
  (match Breaker.admit b with
  | Breaker.Reject { retry_after_ms } ->
    check_true "remaining cooldown reported" (retry_after_ms = 3000)
  | _ -> Alcotest.fail "open must still reject");
  now := 5.;
  check_true "cooldown elapsed: probe" (Breaker.admit b = Breaker.Probe);
  check_true "now half-open" (Breaker.state_name b = "half-open");
  (match Breaker.admit b with
  | Breaker.Reject { retry_after_ms = 1 } -> ()
  | _ -> Alcotest.fail "probes are single-flight");
  Breaker.record b ~ok:true;
  check_true "one success: still half-open" (Breaker.state_name b = "half-open");
  check_true "second probe allowed" (Breaker.admit b = Breaker.Probe);
  Breaker.record b ~ok:true;
  check_true "enough successes re-close" (Breaker.state_name b = "closed");
  (* A failed probe re-opens with a fresh cooldown. *)
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  now := 10.;
  check_true "probe after second trip" (Breaker.admit b = Breaker.Probe);
  Breaker.record b ~ok:false;
  check_true "failed probe re-opens" (Breaker.state_name b = "open");
  check_true "fresh cooldown" (Breaker.retry_after_ms b = 5000);
  (* force_open is the supervisor's lever for structural faults. *)
  Breaker.force_open b ~cooldown_s:100.;
  check_true "forced cooldown" (Breaker.retry_after_ms b = 100_000)

(* ------------------------------------------------------------------ *)
(* Engine: serving correctness *)

let test_transform_matches_library () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:7 ~seed:21 in
      let z = expect_matrix "transform" (transform t x) in
      check_true "server transform ≡ library transform"
        (mat_equal_bits z (Tcca.transform m x)))

let test_predict_formula () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:22 in
      match
        Server.handle t (Protocol.Predict { deadline_ms = -1; views = x; model_id = "default" })
      with
      | Protocol.R_scores s ->
        let zs = Array.mapi (fun p xp -> Tcca.transform_view m p xp) x in
        let lambda = Tcca.correlations m in
        let expect =
          Array.init 5 (fun i ->
              let acc = ref 0. in
              Array.iteri
                (fun k l ->
                  let prod = ref l in
                  Array.iter (fun z -> prod := !prod *. Mat.get z k i) zs;
                  acc := !acc +. !prod)
                lambda;
              !acc)
        in
        check_true "scores = Σₖ λₖ Πₚ Zₚ[k,i]"
          (Array.for_all2 (fun a b -> a = b) s expect)
      | _ -> Alcotest.fail "expected R_scores")

let test_cold_start_refuses_typed () =
  with_server (cfg ()) (fun t ->
      check_true "cold version is 0" (Server.version t = 0);
      let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:1 in
      match transform t x with
      | Protocol.R_error { code = "no-model"; _ } -> ()
      | _ -> Alcotest.fail "cold transform must be a typed no-model refusal")

(* ------------------------------------------------------------------ *)
(* Deadlines *)

let test_deadline_zero_expires_not_hangs () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:7 ~seed:23 in
      (match transform ~deadline_ms:0 t x with
      | Protocol.R_deadline { stage; _ } ->
        check_true "stage names the serve path" (stage = "serve.transform")
      | _ -> Alcotest.fail "deadline 0 must reply R_deadline");
      (* The daemon is unharmed: the next request computes normally. *)
      let z = expect_matrix "after miss" (transform t x) in
      check_true "still serving" (mat_equal_bits z (Tcca.transform m x)))

let test_deadline_counts_queue_wait () =
  (* No workers: a job can only wait.  Its budget starts at enqueue, so the
     wait itself expires it — drain answers it without compute ever running. *)
  let m = fit_model () in
  let t = Server.create ~model:m (cfg ~workers:0 ~queue:4 ()) in
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:24 in
  let resp = ref None in
  let th = Thread.create (fun () -> resp := Some (transform ~deadline_ms:10 t x)) () in
  Thread.delay 0.15;
  Server.drain_and_stop t;
  Thread.join th;
  match !resp with
  | Some (Protocol.R_error { code = "draining"; _ }) -> ()
  | Some _ | None -> Alcotest.fail "queued job must be answered at drain, never hung"

(* ------------------------------------------------------------------ *)
(* Load shedding *)

let test_queue_overflow_sheds () =
  let m = fit_model () in
  (* workers = 0: nothing drains the queue, so capacity 2 fills with the
     first two requests and the third must shed. *)
  let t = Server.create ~model:m (cfg ~workers:0 ~queue:2 ()) in
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:25 in
  let blocked = Array.init 2 (fun _ ->
      Thread.create (fun () -> ignore (transform t x)) ())
  in
  Thread.delay 0.15;
  (match transform t x with
  | Protocol.R_shed { depth; capacity } ->
    check_true "reports full queue" (depth = 2 && capacity = 2)
  | _ -> Alcotest.fail "third request must shed");
  (* Shedding didn't kill the daemon: health is still answered inline. *)
  (match Server.handle t Protocol.Health with
  | Protocol.R_health { queue_depth = 2; _ } -> ()
  | _ -> Alcotest.fail "health must report the full queue");
  Server.drain_and_stop t;
  Array.iter Thread.join blocked

let test_queue_full_inject () =
  let m = fit_model () in
  with_server ~model:m (cfg ~workers:1 ~queue:8 ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:26 in
      Robust.Inject.with_stage Robust.Inject.Queue_full (fun () ->
          match transform t x with
          | Protocol.R_shed _ -> ()
          | _ -> Alcotest.fail "Queue_full inject must shed");
      (* Disarmed: service resumes. *)
      match transform t x with
      | Protocol.R_matrix _ -> ()
      | _ -> Alcotest.fail "service must resume after inject clears")

(* ------------------------------------------------------------------ *)
(* Hot swap *)

let swap_fixture () =
  let serving = fit_model ~seed:3 () in
  let candidate = fit_model ~seed:4 () in
  let path = Filename.temp_file "swap" ".tccm" in
  Model_store.save ~path candidate;
  (serving, candidate, path)

let test_swap_success () =
  let serving, candidate, path = swap_fixture () in
  with_server ~model:serving (cfg ()) (fun t ->
      (match Server.handle t (Protocol.Swap { path; model_id = "default" }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | _ -> Alcotest.fail "valid swap must install as version 2");
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:31 in
      let z = expect_matrix "transform after swap" (transform t x) in
      check_true "serves the swapped-in model" (mat_equal_bits z (Tcca.transform candidate x)));
  Sys.remove path

let unchanged_after_bad_swap t serving x code path =
  (match Server.handle t (Protocol.Swap { path; model_id = "default" }) with
  | Protocol.R_error { code = c; _ } when c = code -> ()
  | Protocol.R_error { code = c; _ } ->
    Alcotest.fail (Printf.sprintf "expected %s, got %s" code c)
  | _ -> Alcotest.fail "bad swap must be refused");
  check_true "version unchanged" (Server.version t = 1);
  let z = expect_matrix "transform after refused swap" (transform t x) in
  check_true "projections unchanged bitwise" (mat_equal_bits z (Tcca.transform serving x))

let test_torn_swap_rolls_back () =
  let serving, _, path = swap_fixture () in
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:32 in
      Robust.Inject.with_stage Robust.Inject.Torn_swap (fun () ->
          unchanged_after_bad_swap t serving x "torn" path);
      (* The same file swaps fine once the tear is gone. *)
      match Server.handle t (Protocol.Swap { path; model_id = "default" }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | _ -> Alcotest.fail "healthy retry of the same swap must succeed");
  Sys.remove path

let test_corrupt_swap_rolls_back () =
  let serving, _, path = swap_fixture () in
  let good = read_file path in
  write_file path
    (String.mapi (fun i c -> if i = 30 then Char.chr (Char.code c lxor 0x10) else c) good);
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:33 in
      unchanged_after_bad_swap t serving x "corrupt" path);
  Sys.remove path

let test_version_skew_swap_refused () =
  let serving, _, path = swap_fixture () in
  let good = read_file path in
  write_file path
    (String.mapi (fun i c -> if i = 4 then Char.chr (Char.code c + 1) else c) good);
  with_server ~model:serving (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:34 in
      unchanged_after_bad_swap t serving x "version-newer" path);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Ingest + refit *)

let test_ingest_then_refit_cold () =
  with_server (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:50 ~seed:41 in
      (match Server.handle t (Protocol.Ingest { views = batch; model_id = "default" }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      (match Server.handle t Protocol.Health with
      | Protocol.R_health { ingested = 50; since_fit = 50; version = 0; _ } -> ()
      | _ -> Alcotest.fail "health must count ingested samples");
      (match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
      | Protocol.R_ok { version = 1; _ } -> ()
      | r ->
        Alcotest.fail
          ("cold refit must install version 1, got " ^ Protocol.response_to_string r));
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:42 in
      match transform t x with
      | Protocol.R_matrix _ -> ()
      | _ -> Alcotest.fail "must serve after cold refit")

let test_refit_no_new_data_retains_bitwise () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:6 ~seed:43 in
      let before = expect_matrix "transform" (transform t x) in
      (match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
      | Protocol.R_ok { version = 1; note } ->
        check_true "says retained"
          (String.length note >= 8 && String.sub note 0 2 = "no")
      | _ -> Alcotest.fail "refit with nothing new must retain");
      check_true "health reports the retained refit"
        ((model_health t "default").Protocol.mh_last_refit = "retained");
      let after = expect_matrix "transform after retained refit" (transform t x) in
      check_true "bit-identical serving model" (mat_equal_bits before after))

let test_warm_refit_installs_and_serves () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:60 ~seed:44 in
      (match Server.handle t (Protocol.Ingest { views = batch; model_id = "default" }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      (match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
      | Protocol.R_ok { version = 2; note } ->
        check_true "refit note mentions install"
          (String.length note > 0)
      | r -> Alcotest.fail ("warm refit must install v2: " ^ Protocol.response_to_string r));
      check_true "health reports the install"
        ((model_health t "default").Protocol.mh_last_refit = "installed v2");
      (* Rank is inherited from the serving model, not cfg.rank. *)
      match Server.handle t Protocol.Health with
      | Protocol.R_health { r = 2; since_fit = 0; _ } -> ()
      | _ -> Alcotest.fail "health after refit")

let test_warm_refit_pool_independent () =
  (* The same ingest+refit sequence at pool 1 and pool 4 must install
     bitwise-identical models — Parallel's pool-size-independence contract
     carried through the whole serving stack. *)
  let saved = Parallel.num_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_num_domains saved)
    (fun () ->
      let run pool =
        Parallel.set_num_domains pool;
        let m = fit_model () in
        with_server ~model:m (cfg ()) (fun t ->
            let batch = synth_views ~views:3 ~dim:6 ~n:60 ~seed:45 in
            (match Server.handle t (Protocol.Ingest { views = batch; model_id = "default" }) with
            | Protocol.R_ok _ -> ()
            | _ -> Alcotest.fail "ingest");
            (match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
            | Protocol.R_ok { version = 2; _ } -> ()
            | r -> Alcotest.fail ("refit: " ^ Protocol.response_to_string r));
            let x = synth_views ~views:3 ~dim:6 ~n:8 ~seed:46 in
            expect_matrix "transform" (transform t x))
      in
      check_true "pool 1 ≡ pool 4 bitwise" (mat_equal_bits (run 1) (run 4)))

let test_refit_nan_leaves_model_untouched () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let batch = synth_views ~views:3 ~dim:6 ~n:30 ~seed:47 in
      (match Server.handle t (Protocol.Ingest { views = batch; model_id = "default" }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest");
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:48 in
      let before = expect_matrix "transform" (transform t x) in
      Robust.Inject.with_stage Robust.Inject.Refit_nan (fun () ->
          match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
          | Protocol.R_error { code = "refit-failed"; message } ->
            check_true "mentions give-up accounting"
              (String.length message > 0)
          | r -> Alcotest.fail ("poisoned refit: " ^ Protocol.response_to_string r));
      check_true "version unchanged" (Server.version t = 1);
      check_true "health reports the failure"
        (let lr = (model_health t "default").Protocol.mh_last_refit in
         String.length lr >= 6 && String.sub lr 0 6 = "failed");
      let after = expect_matrix "transform after failed refit" (transform t x) in
      check_true "pre-refit model still serving, bitwise" (mat_equal_bits before after);
      (* The poison is gone: the retained samples refit fine now. *)
      match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | r -> Alcotest.fail ("recovery refit: " ^ Protocol.response_to_string r))

(* ------------------------------------------------------------------ *)
(* Multi-model registry: routing, isolation, per-model drain *)

let test_unknown_and_invalid_model_ids () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:71 in
      (match transform ~model_id:"nope" t x with
      | Protocol.R_error { code = "unknown-model"; _ } -> ()
      | _ -> Alcotest.fail "transform to an unknown model must be typed");
      (match Server.handle t (Protocol.Model_health { model_id = "nope" }) with
      | Protocol.R_error { code = "unknown-model"; _ } -> ()
      | _ -> Alcotest.fail "model-health of an unknown model must be typed");
      (* Invalid ids can never create registry entries (they are also
         path-unsafe: "../x" would escape the state root). *)
      (match Server.handle t (Protocol.Ingest { views = x; model_id = "../evil" }) with
      | Protocol.R_error { code = "bad-request"; _ } -> ()
      | _ -> Alcotest.fail "invalid id must be refused");
      match Server.handle t Protocol.List_models with
      | Protocol.R_models infos ->
        check_true "no entry was created"
          (Array.length infos = 1 && infos.(0).Protocol.mi_id = "default")
      | _ -> Alcotest.fail "list-models")

let test_second_model_lifecycle () =
  let ma = fit_model ~seed:3 () in
  let mb = fit_model ~seed:5 () in
  with_server ~model:ma (cfg ()) (fun t ->
      install_model t "b" mb;
      (match Server.handle t Protocol.List_models with
      | Protocol.R_models infos ->
        check_true "registry lists both, sorted"
          (Array.length infos = 2
          && infos.(0).Protocol.mi_id = "b"
          && infos.(1).Protocol.mi_id = "default")
      | _ -> Alcotest.fail "list-models");
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:72 in
      let za = expect_matrix "default" (transform t x) in
      let zb = expect_matrix "b" (transform ~model_id:"b" t x) in
      check_true "each id serves its own model"
        (mat_equal_bits za (Tcca.transform ma x) && mat_equal_bits zb (Tcca.transform mb x));
      let hb = model_health t "b" in
      check_true "b's health record"
        (hb.Protocol.mh_version = 1 && hb.Protocol.mh_breaker = "closed"
        && hb.Protocol.mh_queue_depth = 0);
      (* Ingest + refit on "b" bumps only "b". *)
      let batch = synth_views ~views:3 ~dim:6 ~n:60 ~seed:73 in
      (match Server.handle t (Protocol.Ingest { views = batch; model_id = "b" }) with
      | Protocol.R_ok _ -> ()
      | _ -> Alcotest.fail "ingest b");
      (match Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "b" }) with
      | Protocol.R_ok { version = 2; _ } -> ()
      | r -> Alcotest.fail ("refit b: " ^ Protocol.response_to_string r));
      check_true "default untouched by b's refit" (Server.version t = 1);
      let za' = expect_matrix "default after b refit" (transform t x) in
      check_true "default projections bitwise unchanged" (mat_equal_bits za za'))

let test_per_model_drain_isolates () =
  let ma = fit_model ~seed:3 () in
  let mb = fit_model ~seed:5 () in
  with_server ~model:ma (cfg ()) (fun t ->
      install_model t "b" mb;
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:74 in
      let zb = expect_matrix "b before" (transform ~model_id:"b" t x) in
      (match Server.handle t (Protocol.Drain { model_id = "default" }) with
      | Protocol.R_ok _ -> ()
      | r -> Alcotest.fail ("drain default: " ^ Protocol.response_to_string r));
      (match transform t x with
      | Protocol.R_error { code = "draining"; _ } -> ()
      | _ -> Alcotest.fail "drained model must refuse work");
      check_true "daemon-wide flag untouched" (not (Server.draining t));
      let zb' = expect_matrix "b after" (transform ~model_id:"b" t x) in
      check_true "sibling serves bitwise through the drain" (mat_equal_bits zb zb');
      match Server.handle t Protocol.List_models with
      | Protocol.R_models infos ->
        check_true "listing shows exactly one draining model"
          (Array.for_all
             (fun i -> i.Protocol.mi_draining = (i.Protocol.mi_id = "default"))
             infos)
      | _ -> Alcotest.fail "list-models")

(* ------------------------------------------------------------------ *)
(* Supervision: crashed workers are respawned, with a capped budget *)

let test_worker_crash_respawns () =
  let m = fit_model () in
  with_server ~model:m (cfg ~workers:1 ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:4 ~seed:81 in
      Robust.Inject.with_stage Robust.Inject.Worker_crash (fun () ->
          match transform t x with
          | Protocol.R_error { code = "worker-crash"; _ } -> ()
          | r -> Alcotest.fail ("crash must answer typed: " ^ Protocol.response_to_string r));
      (* The supervisor respawned the worker: service resumes, and the
         health record owns up to the respawn. *)
      let z = expect_matrix "after respawn" (transform t x) in
      check_true "respawned worker serves bitwise" (mat_equal_bits z (Tcca.transform m x));
      let h = model_health t "default" in
      check_true "respawn counted" (h.Protocol.mh_respawns = 1);
      check_true "worker pool restored" (h.Protocol.mh_workers = 1);
      check_true "breaker still closed" (h.Protocol.mh_breaker = "closed"))

let test_respawn_budget_forces_breaker_open () =
  let ma = fit_model ~seed:3 () in
  let mb = fit_model ~seed:5 () in
  with_server ~model:ma (cfg ~workers:1 ~max_respawns:1 ()) (fun t ->
      install_model t "b" mb;
      let x = synth_views ~views:3 ~dim:6 ~n:4 ~seed:82 in
      let zb = expect_matrix "b before" (transform ~model_id:"b" t x) in
      (* Two crashes on "b": the first consumes the respawn budget, the
         second exhausts it — last worker dead, breaker forced open. *)
      Robust.Inject.with_stage Robust.Inject.Worker_crash (fun () ->
          for _ = 1 to 2 do
            match transform ~model_id:"b" t x with
            | Protocol.R_error { code = "worker-crash"; _ } -> ()
            | r -> Alcotest.fail ("crash reply: " ^ Protocol.response_to_string r)
          done);
      (* Give the supervisor thread its turn to finish the post-crash
         bookkeeping (force_open runs after the crash reply is sent). *)
      Thread.delay 0.05;
      (match transform ~model_id:"b" t x with
      | Protocol.R_unavailable { model_id = "b"; retry_after_ms } ->
        check_true "long cooldown" (retry_after_ms > 0)
      | r -> Alcotest.fail ("dead model must be unavailable: " ^ Protocol.response_to_string r));
      let h = model_health t "b" in
      check_true "b is open with no workers"
        (h.Protocol.mh_breaker = "open" && h.Protocol.mh_workers = 0
        && h.Protocol.mh_respawns = 1);
      (* The failure domain held: "default" serves bitwise through all of it. *)
      let za = expect_matrix "default through b's death" (transform t x) in
      check_true "sibling unaffected" (mat_equal_bits za (Tcca.transform ma x));
      check_true "sibling breaker closed"
        ((model_health t "default").Protocol.mh_breaker = "closed");
      ignore zb)

(* ------------------------------------------------------------------ *)
(* Circuit breaker on the serving path *)

let trip_breaker t ~model_id ~threshold x =
  (* deadline 0 requests expire deterministically — each is a breaker
     failure without touching the model. *)
  for _ = 1 to threshold do
    match transform ~model_id ~deadline_ms:0 t x with
    | Protocol.R_deadline _ -> ()
    | r -> Alcotest.fail ("expected R_deadline: " ^ Protocol.response_to_string r)
  done

let test_breaker_trips_and_isolates () =
  let ma = fit_model ~seed:3 () in
  let mb = fit_model ~seed:5 () in
  let breaker =
    { Breaker.failure_threshold = 3; open_cooldown_s = 30.; half_open_successes = 1 }
  in
  with_server ~model:ma (cfg ~breaker ()) (fun t ->
      install_model t "b" mb;
      let x = synth_views ~views:3 ~dim:6 ~n:4 ~seed:83 in
      trip_breaker t ~model_id:"b" ~threshold:3 x;
      (match transform ~model_id:"b" t x with
      | Protocol.R_unavailable { model_id = "b"; retry_after_ms } ->
        check_true "cooldown is running" (retry_after_ms > 0 && retry_after_ms <= 30_000)
      | r -> Alcotest.fail ("tripped breaker must reject: " ^ Protocol.response_to_string r));
      check_true "b reads open" ((model_health t "b").Protocol.mh_breaker = "open");
      (* The rejection was immediate and typed; the sibling never noticed. *)
      let za = expect_matrix "default while b is open" (transform t x) in
      check_true "sibling serves bitwise" (mat_equal_bits za (Tcca.transform ma x));
      check_true "sibling breaker closed"
        ((model_health t "default").Protocol.mh_breaker = "closed"))

let test_breaker_half_open_recloses () =
  let m = fit_model () in
  let breaker =
    { Breaker.failure_threshold = 1; open_cooldown_s = 0.05; half_open_successes = 1 }
  in
  with_server ~model:m (cfg ~breaker ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:4 ~seed:84 in
      trip_breaker t ~model_id:"default" ~threshold:1 x;
      (match transform t x with
      | Protocol.R_unavailable _ -> ()
      | r -> Alcotest.fail ("open must reject: " ^ Protocol.response_to_string r));
      Thread.delay 0.1;
      (* Cooldown served: this request is the half-open probe, it succeeds,
         and one success re-closes the breaker. *)
      let z = expect_matrix "probe" (transform t x) in
      check_true "probe served bitwise" (mat_equal_bits z (Tcca.transform m x));
      check_true "re-closed" ((model_health t "default").Protocol.mh_breaker = "closed"))

let test_breaker_probe_fail_reopens () =
  let m = fit_model () in
  let breaker =
    { Breaker.failure_threshold = 1; open_cooldown_s = 0.05; half_open_successes = 1 }
  in
  with_server ~model:m (cfg ~breaker ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:4 ~seed:85 in
      trip_breaker t ~model_id:"default" ~threshold:1 x;
      Thread.delay 0.1;
      (* The probe itself dies (injected): the breaker must re-open with a
         fresh cooldown instead of re-closing on a broken path. *)
      Robust.Inject.with_stage Robust.Inject.Breaker_probe_fail (fun () ->
          match transform t x with
          | Protocol.R_error { code = "internal"; _ } -> ()
          | r -> Alcotest.fail ("failed probe reply: " ^ Protocol.response_to_string r));
      (match transform t x with
      | Protocol.R_unavailable _ -> ()
      | r -> Alcotest.fail ("must re-open after failed probe: " ^ Protocol.response_to_string r));
      (* Next cooldown + healthy probe: service recovers for real. *)
      Thread.delay 0.1;
      let z = expect_matrix "healthy probe" (transform t x) in
      check_true "recovered bitwise" (mat_equal_bits z (Tcca.transform m x));
      check_true "closed again" ((model_health t "default").Protocol.mh_breaker = "closed"))

(* ------------------------------------------------------------------ *)
(* Drain + recovery *)

let test_drain_refuses_then_flushes () =
  let m = fit_model () in
  let dir = tmp_dir "tccad-drain" in
  let t = Server.create ~model:m (cfg ~state_dir:dir ()) in
  (match Server.handle t (Protocol.Drain { model_id = "" }) with
  | Protocol.R_ok { note = "draining"; _ } -> ()
  | _ -> Alcotest.fail "drain ack");
  let x = synth_views ~views:3 ~dim:6 ~n:3 ~seed:51 in
  (match transform t x with
  | Protocol.R_error { code = "draining"; _ } -> ()
  | _ -> Alcotest.fail "work during drain must be refused");
  (* Health keeps answering so orchestrators can watch the drain. *)
  (match Server.handle t Protocol.Health with
  | Protocol.R_health { draining = true; _ } -> ()
  | _ -> Alcotest.fail "health during drain");
  Server.drain_and_stop t;
  check_true "snapshot written under the model's own dir at drain"
    (Sys.file_exists (Filename.concat dir "default/model-v000001.tccm"));
  rm_rf dir

let test_recovery_from_newest_valid () =
  (* Legacy (PR-8) on-disk layout: top-level model-v*.tccm files, no
     per-model subdirs — recovery must adopt them as "default". *)
  let dir = tmp_dir "tccad-recover" in
  let m1 = fit_model ~seed:3 () in
  let m2 = fit_model ~seed:4 () in
  Model_store.save ~path:(Filename.concat dir "model-v000001.tccm") m1;
  Model_store.save ~path:(Filename.concat dir "model-v000002.tccm") m2;
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "adopts newest version" (Server.version t = 2);
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:52 in
      let z = expect_matrix "transform after recovery" (transform t x) in
      check_true "serves the newest model bitwise" (mat_equal_bits z (Tcca.transform m2 x)));
  rm_rf dir

let test_recovery_skips_corrupt_newest () =
  let dir = tmp_dir "tccad-skip" in
  let m1 = fit_model ~seed:3 () in
  let m2 = fit_model ~seed:4 () in
  let p1 = Filename.concat dir "model-v000001.tccm" in
  let p2 = Filename.concat dir "model-v000002.tccm" in
  Model_store.save ~path:p1 m1;
  Model_store.save ~path:p2 m2;
  (* Tear the newest snapshot: recovery must fall back to v1, loudly. *)
  let good = read_file p2 in
  write_file p2 (String.sub good 0 (String.length good / 2));
  Robust.clear_warnings ();
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "falls back to the older valid snapshot" (Server.version t = 1);
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:53 in
      let z = expect_matrix "transform after degraded recovery" (transform t x) in
      check_true "serves v1 bitwise" (mat_equal_bits z (Tcca.transform m1 x)));
  rm_rf dir

let test_recovery_all_corrupt_degrades_cold () =
  let dir = tmp_dir "tccad-cold" in
  write_file (Filename.concat dir "model-v000003.tccm") "TCCMgarbage";
  with_server (cfg ~state_dir:dir ()) (fun t ->
      check_true "cold start" (Server.version t = 0 && Server.model t = None));
  rm_rf dir

let test_recovery_mixed_model_dirs () =
  (* Three models on disk: "a" healthy, "b" newest-torn (must fall back),
     "c" all-garbage (must cold-start) — each recovered independently. *)
  let dir = tmp_dir "tccad-mixed" in
  let ma = fit_model ~seed:3 () in
  let mb1 = fit_model ~seed:4 () in
  let mb2 = fit_model ~seed:5 () in
  Unix.mkdir (Filename.concat dir "a") 0o755;
  Unix.mkdir (Filename.concat dir "b") 0o755;
  Unix.mkdir (Filename.concat dir "c") 0o755;
  Model_store.save ~path:(Filename.concat dir "a/model-v000002.tccm") ma;
  Model_store.save ~path:(Filename.concat dir "b/model-v000001.tccm") mb1;
  Model_store.save ~path:(Filename.concat dir "b/model-v000002.tccm") mb2;
  let pb2 = Filename.concat dir "b/model-v000002.tccm" in
  let good = read_file pb2 in
  write_file pb2 (String.sub good 0 (String.length good / 2));
  write_file (Filename.concat dir "c/model-v000009.tccm") "TCCMgarbage";
  Robust.clear_warnings ();
  with_server (cfg ~state_dir:dir ()) (fun t ->
      let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:54 in
      let ha = model_health t "a" in
      check_true "a recovered at v2" (ha.Protocol.mh_version = 2);
      let za = expect_matrix "a" (transform ~model_id:"a" t x) in
      check_true "a serves bitwise" (mat_equal_bits za (Tcca.transform ma x));
      let hb = model_health t "b" in
      check_true "b fell back to v1" (hb.Protocol.mh_version = 1);
      let zb = expect_matrix "b" (transform ~model_id:"b" t x) in
      check_true "b serves the fallback bitwise" (mat_equal_bits zb (Tcca.transform mb1 x));
      let hc = model_health t "c" in
      check_true "c cold-started" (hc.Protocol.mh_version = 0 && hc.Protocol.mh_r = 0);
      (match transform ~model_id:"c" t x with
      | Protocol.R_error { code = "no-model"; _ } -> ()
      | _ -> Alcotest.fail "cold c must refuse typed"));
  rm_rf dir

let test_recovery_corrupt_one_inject () =
  (* [Registry_corrupt_one] marks the alphabetically-first model dir
     unreadable: that model cold-starts with a warning while its sibling
     recovers normally — one rotten state dir never poisons the rest. *)
  let dir = tmp_dir "tccad-corrupt1" in
  let ma = fit_model ~seed:3 () in
  let mb = fit_model ~seed:4 () in
  Unix.mkdir (Filename.concat dir "a") 0o755;
  Unix.mkdir (Filename.concat dir "b") 0o755;
  Model_store.save ~path:(Filename.concat dir "a/model-v000001.tccm") ma;
  Model_store.save ~path:(Filename.concat dir "b/model-v000001.tccm") mb;
  Robust.clear_warnings ();
  Robust.Inject.with_stage Robust.Inject.Registry_corrupt_one (fun () ->
      with_server (cfg ~state_dir:dir ()) (fun t ->
          let x = synth_views ~views:3 ~dim:6 ~n:5 ~seed:55 in
          check_true "a cold-started" ((model_health t "a").Protocol.mh_version = 0);
          check_true "warning names the injected corruption"
            (List.exists
               (fun w -> String.length w > 0 && String.sub w 0 8 = "tccad[a]")
               (Robust.drain_warnings ()));
          let zb = expect_matrix "b" (transform ~model_id:"b" t x) in
          check_true "b recovered bitwise despite a's corruption"
            (mat_equal_bits zb (Tcca.transform mb x))));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Socket layer *)

let with_connection t f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Event_loop.serve_connection t server) () in
  let out =
    Fun.protect
      ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
      (fun () -> f client)
  in
  Thread.join th;
  out

let test_socket_roundtrip () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      with_connection t (fun fd ->
          (match Protocol.call fd Protocol.Health with
          | Protocol.R_health { version = 1; r = 2; _ } -> ()
          | _ -> Alcotest.fail "health over socket");
          (match Protocol.call fd Protocol.List_models with
          | Protocol.R_models [| { Protocol.mi_id = "default"; mi_version = 1; _ } |] -> ()
          | _ -> Alcotest.fail "list-models over socket");
          (match Protocol.call fd (Protocol.Model_health { model_id = "default" }) with
          | Protocol.R_model_health { Protocol.mh_breaker = "closed"; mh_version = 1; _ } -> ()
          | _ -> Alcotest.fail "model-health over socket");
          let x = synth_views ~views:3 ~dim:6 ~n:6 ~seed:61 in
          match
            Protocol.call fd
              (Protocol.Transform { deadline_ms = -1; views = x; model_id = "default" })
          with
          | Protocol.R_matrix z ->
            check_true "socket transform ≡ library" (mat_equal_bits z (Tcca.transform m x))
          | _ -> Alcotest.fail "transform over socket"))

let test_slow_client_dropped_not_wedged () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      Robust.Inject.with_stage Robust.Inject.Slow_client (fun () ->
          let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let th = Thread.create (fun () -> Event_loop.serve_connection t server) () in
          (* The connection thread reports Timeout immediately and drops the
             connection — joining here means no thread was wedged. *)
          Thread.join th;
          (try Unix.close client with Unix.Unix_error _ -> ()));
      (* A healthy client right after is served normally. *)
      with_connection t (fun fd ->
          match Protocol.call fd Protocol.Health with
          | Protocol.R_health _ -> ()
          | _ -> Alcotest.fail "health after dropped slow client"))

let test_socket_garbage_gets_typed_error () =
  let m = fit_model () in
  with_server ~model:m (cfg ()) (fun t ->
      with_connection t (fun fd ->
          Protocol.write_frame fd "\xFFnot a request";
          match Protocol.read_frame fd with
          | Protocol.Frame body -> (
            match Protocol.response_of_string body with
            | Ok (Protocol.R_error { code = "bad-request"; _ }) -> ()
            | _ -> Alcotest.fail "garbage must get a typed bad-request")
          | _ -> Alcotest.fail "no reply to garbage"))

(* ------------------------------------------------------------------ *)
(* qcheck: retained refit is bit-stable at any pool size *)

let qcheck_retained_refit_pool_stable =
  QCheck.Test.make ~count:8 ~name:"refit(no new data) serves bit-identical at pools 1/4"
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, rank) ->
      let saved = Parallel.num_domains () in
      Fun.protect
        ~finally:(fun () -> Parallel.set_num_domains saved)
        (fun () ->
          let run pool =
            Parallel.set_num_domains pool;
            let m = Tcca.fit ~r:rank (synth_views ~views:3 ~dim:5 ~n:30 ~seed) in
            with_server ~model:m (cfg ()) (fun t ->
                (match
                   Server.handle t (Protocol.Refit { deadline_ms = -1; model_id = "default" })
                 with
                | Protocol.R_ok { version = 1; _ } -> ()
                | _ -> Alcotest.fail "retained refit");
                let x = synth_views ~views:3 ~dim:5 ~n:6 ~seed:(seed + 1) in
                expect_matrix "transform" (transform t x))
          in
          mat_equal_bits (run 1) (run 4)))

(* qcheck: the fault-isolation property.  Whatever fault hits model A —
   torn swap, poisoned refit, worker crash — model B's version counter and
   served projections are bitwise unchanged and its breaker stays closed,
   at pool sizes 1 and 4. *)
let qcheck_fault_on_a_isolated_from_b =
  QCheck.Test.make ~count:6
    ~name:"fault on A leaves B bitwise unchanged (torn swap/NaN refit/crash, pools 1/4)"
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, fault) ->
      let saved = Parallel.num_domains () in
      Fun.protect
        ~finally:(fun () -> Parallel.set_num_domains saved)
        (fun () ->
          let run pool =
            Parallel.set_num_domains pool;
            let ma = Tcca.fit ~r:2 (synth_views ~views:3 ~dim:5 ~n:30 ~seed) in
            let mb = Tcca.fit ~r:2 (synth_views ~views:3 ~dim:5 ~n:30 ~seed:(seed + 7)) in
            with_server ~model:ma (cfg ~workers:1 ()) (fun t ->
                install_model t "b" mb;
                let x = synth_views ~views:3 ~dim:5 ~n:6 ~seed:(seed + 1) in
                let zb = expect_matrix "b before" (transform ~model_id:"b" t x) in
                let vb = (model_health t "b").Protocol.mh_version in
                (* Strike model A ("default"). *)
                (match fault with
                | 0 ->
                  (* Torn swap. *)
                  let path = Filename.temp_file "qcheck-swap" ".tccm" in
                  Model_store.save ~path ma;
                  Robust.Inject.with_stage Robust.Inject.Torn_swap (fun () ->
                      match Server.handle t (Protocol.Swap { path; model_id = "default" }) with
                      | Protocol.R_error { code = "torn"; _ } -> ()
                      | r -> Alcotest.fail ("torn swap: " ^ Protocol.response_to_string r));
                  Sys.remove path
                | 1 ->
                  (* Poisoned refit. *)
                  let batch = synth_views ~views:3 ~dim:5 ~n:20 ~seed:(seed + 2) in
                  (match
                     Server.handle t (Protocol.Ingest { views = batch; model_id = "default" })
                   with
                  | Protocol.R_ok _ -> ()
                  | _ -> Alcotest.fail "ingest");
                  Robust.Inject.with_stage Robust.Inject.Refit_nan (fun () ->
                      match
                        Server.handle t
                          (Protocol.Refit { deadline_ms = -1; model_id = "default" })
                      with
                      | Protocol.R_error { code = "refit-failed"; _ } -> ()
                      | r -> Alcotest.fail ("NaN refit: " ^ Protocol.response_to_string r))
                | _ ->
                  (* Worker crash. *)
                  Robust.Inject.with_stage Robust.Inject.Worker_crash (fun () ->
                      match transform t x with
                      | Protocol.R_error { code = "worker-crash"; _ } -> ()
                      | r -> Alcotest.fail ("crash: " ^ Protocol.response_to_string r)));
                (* B is untouched: same version, closed breaker, bitwise
                   identical projections. *)
                let hb = model_health t "b" in
                if hb.Protocol.mh_version <> vb then Alcotest.fail "B's version moved";
                if hb.Protocol.mh_breaker <> "closed" then Alcotest.fail "B's breaker moved";
                let zb' = expect_matrix "b after" (transform ~model_id:"b" t x) in
                if not (mat_equal_bits zb zb') then Alcotest.fail "B's projections moved";
                zb')
          in
          mat_equal_bits (run 1) (run 4)))

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "codec roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "legacy frames decode to default" `Quick
            test_wire_compat_decodes_legacy;
          Alcotest.test_case "legacy client served end-to-end" `Quick
            test_wire_compat_legacy_client_served;
          Alcotest.test_case "garbage over socket" `Quick test_socket_garbage_gets_typed_error ] );
      ( "model-store",
        [ Alcotest.test_case "roundtrip" `Quick test_model_store_roundtrip;
          Alcotest.test_case "rejects damage" `Quick test_model_store_rejects_damage;
          Alcotest.test_case "torn write refused on load" `Quick
            test_torn_model_write_refused_on_load ] );
      ( "breaker",
        [ Alcotest.test_case "state machine (fake clock)" `Quick test_breaker_state_machine;
          Alcotest.test_case "trips and isolates" `Quick test_breaker_trips_and_isolates;
          Alcotest.test_case "half-open re-closes" `Quick test_breaker_half_open_recloses;
          Alcotest.test_case "failed probe re-opens" `Quick test_breaker_probe_fail_reopens ] );
      ( "supervision",
        [ Alcotest.test_case "crash answers typed, respawns" `Quick test_worker_crash_respawns;
          Alcotest.test_case "respawn budget forces breaker open" `Quick
            test_respawn_budget_forces_breaker_open ] );
      ( "serving",
        [ Alcotest.test_case "transform ≡ library" `Quick test_transform_matches_library;
          Alcotest.test_case "predict formula" `Quick test_predict_formula;
          Alcotest.test_case "cold start typed refusal" `Quick test_cold_start_refuses_typed;
          Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip ] );
      ( "multi-model",
        [ Alcotest.test_case "unknown/invalid ids typed" `Quick
            test_unknown_and_invalid_model_ids;
          Alcotest.test_case "second model lifecycle" `Quick test_second_model_lifecycle;
          Alcotest.test_case "per-model drain isolates" `Quick test_per_model_drain_isolates;
          QCheck_alcotest.to_alcotest qcheck_fault_on_a_isolated_from_b ] );
      ( "deadlines",
        [ Alcotest.test_case "deadline 0 expires, never hangs" `Quick
            test_deadline_zero_expires_not_hangs;
          Alcotest.test_case "queue wait counts" `Quick test_deadline_counts_queue_wait ] );
      ( "shedding",
        [ Alcotest.test_case "overflow sheds" `Quick test_queue_overflow_sheds;
          Alcotest.test_case "Queue_full inject" `Quick test_queue_full_inject;
          Alcotest.test_case "slow client dropped" `Quick test_slow_client_dropped_not_wedged ] );
      ( "hot-swap",
        [ Alcotest.test_case "valid swap installs" `Quick test_swap_success;
          Alcotest.test_case "torn swap rolls back" `Quick test_torn_swap_rolls_back;
          Alcotest.test_case "corrupt swap rolls back" `Quick test_corrupt_swap_rolls_back;
          Alcotest.test_case "version skew refused" `Quick test_version_skew_swap_refused ] );
      ( "refit",
        [ Alcotest.test_case "cold ingest+refit" `Quick test_ingest_then_refit_cold;
          Alcotest.test_case "no new data retained bitwise" `Quick
            test_refit_no_new_data_retains_bitwise;
          Alcotest.test_case "warm refit installs" `Quick test_warm_refit_installs_and_serves;
          Alcotest.test_case "warm refit pool-independent" `Quick
            test_warm_refit_pool_independent;
          Alcotest.test_case "Refit_nan leaves model" `Quick
            test_refit_nan_leaves_model_untouched;
          QCheck_alcotest.to_alcotest qcheck_retained_refit_pool_stable ] );
      ( "drain-recovery",
        [ Alcotest.test_case "drain refuses and flushes" `Quick test_drain_refuses_then_flushes;
          Alcotest.test_case "recovers newest valid (legacy layout)" `Quick
            test_recovery_from_newest_valid;
          Alcotest.test_case "skips corrupt newest" `Quick test_recovery_skips_corrupt_newest;
          Alcotest.test_case "all corrupt -> cold" `Quick test_recovery_all_corrupt_degrades_cold;
          Alcotest.test_case "mixed model dirs recover independently" `Quick
            test_recovery_mixed_model_dirs;
          Alcotest.test_case "Registry_corrupt_one isolates" `Quick
            test_recovery_corrupt_one_inject ] ) ]
