open Test_support

let test_diagonal () =
  let a = Mat.diag_of_vec [| 3.; 1.; 2. |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-12 "sorted eigenvalues" [| 3.; 2.; 1. |] values

let test_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let { Eigen.values; vectors } = Eigen.decompose a in
  check_vec ~eps:1e-10 "values" [| 3.; 1. |] values;
  (* Eigenvector for 3 is (1,1)/√2 up to sign. *)
  let v0 = Mat.col vectors 0 in
  check_float ~eps:1e-10 "direction" 1. (Float.abs (v0.(0) /. v0.(1)))

let test_reconstruction () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = random_spd r 8 in
    let eig = Eigen.decompose a in
    check_mat ~eps:1e-7 "V Λ Vᵀ = A" a (Eigen.reconstruct eig)
  done

let test_orthonormal_vectors () =
  let r = rng () in
  let a = random_spd r 10 in
  let { Eigen.vectors; _ } = Eigen.decompose a in
  check_mat ~eps:1e-8 "VᵀV = I" (Mat.identity 10) (Mat.tgram vectors)

let test_eigen_equation () =
  let r = rng () in
  let a = random_spd r 7 in
  let { Eigen.values; vectors } = Eigen.decompose a in
  for k = 0 to 6 do
    let v = Mat.col vectors k in
    let av = Mat.mul_vec a v in
    check_true
      (Printf.sprintf "A v = λ v (k=%d)" k)
      (Vec.norm (Vec.sub av (Vec.scale values.(k) v)) < 1e-7 *. (1. +. Float.abs values.(k)))
  done

let test_trace_is_sum () =
  let r = rng () in
  let a = random_spd r 9 in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_float ~eps:1e-7 "trace = Σλ" (Mat.trace a) (Vec.sum values)

let test_indefinite () =
  (* Symmetric but indefinite: eigenvalues ±1. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-10 "±1" [| 1.; -1. |] values

let test_top_k () =
  let r = rng () in
  let a = random_spd r 6 in
  let eig = Eigen.decompose a in
  let top = Eigen.top_k eig 2 in
  Alcotest.(check (pair int int)) "shape" (6, 2) (Mat.dims top);
  check_vec ~eps:1e-12 "first column" (Mat.col eig.Eigen.vectors 0) (Mat.col top 0)

let test_asymmetric_input_symmetrized () =
  (* The contract (see eigen.mli) is that BOTH triangles are read and the
     input is decomposed as its symmetric part (a + aᵀ)/2 — not as the
     upper triangle mirrored.  [[2,1],[0,2]] symmetrizes to [[2,.5],[.5,2]]
     (eigenvalues 2.5, 1.5); an upper-triangle-only read would give 3, 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 0.; 2. |] |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-10 "symmetric-part eigenvalues" [| 2.5; 1.5 |] values;
  let r = rng () in
  let b = random_mat r 6 6 in
  let sym = Mat.init 6 6 (fun i j -> 0.5 *. (Mat.get b i j +. Mat.get b j i)) in
  check_vec ~eps:1e-9 "random: decompose a = decompose sym(a)"
    (Eigen.decompose sym).Eigen.values (Eigen.decompose b).Eigen.values

let test_not_square () =
  Alcotest.check_raises "not square" (Invalid_argument "Eigen.decompose: not square")
    (fun () -> ignore (Eigen.decompose (Mat.create 2 3)))

let test_1x1 () =
  let { Eigen.values; vectors } = Eigen.decompose (Mat.of_arrays [| [| 5. |] |]) in
  check_vec "value" [| 5. |] values;
  check_float "vector" 1. (Float.abs (Mat.get vectors 0 0))

(* --- Method equivalence: the two-stage tridiagonal fast path against the
   cyclic-Jacobi oracle.  The methods share no arithmetic, so agreement on
   eigenvalues plus each side's own orthogonality/reconstruction residuals
   is strong evidence both are right. --- *)

let gen_symmetric =
  QCheck2.Gen.(
    gen_square_mat >|= fun a ->
    let n, _ = Mat.dims a in
    Mat.init n n (fun i j -> 0.5 *. (Mat.get a i j +. Mat.get a j i)))

(* Q diag(λ) Qᵀ with eigenvalues drawn from a 3-value menu plus a ±1e-11
   jitter: duplicates are likely, so the spectrum carries the near-degenerate
   clusters that stress shift/deflation logic. *)
let gen_near_degenerate =
  QCheck2.Gen.(
    int_range 2 8 >>= fun n ->
    array_size (return (n * n)) (float_range (-10.) 10.) >>= fun qdata ->
    array_size (return n) (oneofl [ 1.; 2.; 7. ]) >>= fun base ->
    array_size (return n) (oneofl [ 0.; 1e-11; -1e-11 ]) >|= fun jitter ->
    let q = Qr.orthonormalize (Mat.unsafe_of_flat ~rows:n ~cols:n qdata) in
    let lam = Array.mapi (fun i b -> b +. jitter.(i)) base in
    let scaled = Mat.init n n (fun i j -> Mat.get q i j *. lam.(j)) in
    Mat.mul_nt scaled q)

let eigenvalues_agree a =
  let va = (Eigen.decompose ~method_:`Tridiagonal a).Eigen.values in
  let vb = (Eigen.decompose ~method_:`Jacobi a).Eigen.values in
  let scale = Array.fold_left (fun acc l -> Float.max acc (Float.abs l)) 1. vb in
  Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-8 *. scale) va vb

let prop_methods_agree_spd =
  qtest ~count:80 "tridiagonal = jacobi eigenvalues (SPD)" gen_spd eigenvalues_agree

let prop_methods_agree_symmetric =
  qtest ~count:80 "tridiagonal = jacobi eigenvalues (indefinite symmetric)" gen_symmetric
    eigenvalues_agree

let prop_methods_agree_degenerate =
  qtest ~count:80 "tridiagonal = jacobi eigenvalues (near-degenerate)" gen_near_degenerate
    eigenvalues_agree

let prop_tridiagonal_orthogonal =
  qtest ~count:80 "tridiagonal ‖QᵀQ−I‖ small" gen_symmetric (fun a ->
      let { Eigen.vectors; _ } = Eigen.decompose ~method_:`Tridiagonal a in
      let n, _ = Mat.dims a in
      Mat.frobenius (Mat.sub (Mat.tgram vectors) (Mat.identity n)) <= 1e-10 *. float_of_int n)

let prop_tridiagonal_eigen_equation =
  qtest ~count:80 "tridiagonal ‖AQ−QΛ‖ small" gen_symmetric (fun a ->
      let { Eigen.values; vectors } = Eigen.decompose ~method_:`Tridiagonal a in
      let n, _ = Mat.dims a in
      let aq = Mat.mul a vectors in
      let ql = Mat.init n n (fun i j -> Mat.get vectors i j *. values.(j)) in
      Mat.frobenius (Mat.sub aq ql) <= 1e-8 *. (1. +. Mat.frobenius a))

let test_method_of_env () =
  let is_jacobi = function `Jacobi -> true | `Tridiagonal -> false in
  check_true "unset -> tridiagonal" (not (is_jacobi (Eigen.method_of_env None)));
  check_true "jacobi" (is_jacobi (Eigen.method_of_env (Some "jacobi")));
  check_true "case/space-insensitive" (is_jacobi (Eigen.method_of_env (Some " JaCoBi ")));
  check_true "tridiagonal" (not (is_jacobi (Eigen.method_of_env (Some "tridiagonal"))));
  check_true "garbage -> tridiagonal" (not (is_jacobi (Eigen.method_of_env (Some "qr"))))

(* The iteration cap must surface structurally for BOTH methods — a
   regression here would let a non-converged spectrum whiten a view
   silently.  [Sweep_cap] forces a 0-iteration cap. *)
let test_sweep_cap_surfaced () =
  let r = rng () in
  let a = random_spd r 6 in
  List.iter
    (fun (name, method_) ->
      Robust.Inject.with_stage Robust.Inject.Sweep_cap (fun () ->
          let _, info = Eigen.decompose_info ~method_ a in
          check_true (name ^ ": converged=false under cap") (not info.Eigen.converged);
          Alcotest.(check int) (name ^ ": zero iterations") 0 info.Eigen.sweeps;
          check_true (name ^ ": residual positive") (info.Eigen.residual > 0.)))
    [ ("tridiagonal", `Tridiagonal); ("jacobi", `Jacobi) ]

(* Bitwise pool-size determinism: the banded tred2/QL loops own disjoint
   rows/columns and accumulate in a fixed order, so results must be
   identical — not merely close — for any TCCA_DOMAINS.  Cutoff 0 forces
   even these small matrices through the pool. *)
let test_pool_determinism () =
  let r = rng () in
  let a = random_spd r 24 in
  let saved_cutoff = Parallel.sequential_cutoff () in
  let saved_domains = Parallel.num_domains () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_sequential_cutoff saved_cutoff;
      Parallel.set_num_domains saved_domains)
    (fun () ->
      Parallel.set_sequential_cutoff 0;
      Parallel.set_num_domains 1;
      let e1 = Eigen.decompose ~method_:`Tridiagonal a in
      Parallel.set_num_domains 4;
      let e4 = Eigen.decompose ~method_:`Tridiagonal a in
      let bits x = Int64.bits_of_float x in
      check_true "values bitwise equal"
        (Array.for_all2 (fun x y -> bits x = bits y) e1.Eigen.values e4.Eigen.values);
      check_true "vectors bitwise equal"
        (Array.for_all2
           (fun x y -> bits x = bits y)
           e1.Eigen.vectors.Mat.data e4.Eigen.vectors.Mat.data))

let prop_psd_eigenvalues_nonneg =
  qtest ~count:60 "SPD eigenvalues > 0" gen_spd (fun a ->
      Array.for_all (fun l -> l > 0.) (Eigen.decompose a).Eigen.values)

let prop_values_sorted =
  qtest ~count:60 "eigenvalues descending" gen_spd (fun a ->
      let v = (Eigen.decompose a).Eigen.values in
      let ok = ref true in
      for i = 1 to Array.length v - 1 do
        if v.(i) > v.(i - 1) +. 1e-12 then ok := false
      done;
      !ok)

let prop_frobenius_invariant =
  qtest ~count:60 "‖A‖F² = Σλ² for symmetric A" gen_spd (fun a ->
      let v = (Eigen.decompose a).Eigen.values in
      let sum2 = Array.fold_left (fun acc l -> acc +. (l *. l)) 0. v in
      Float.abs (sum2 -. (Mat.frobenius a ** 2.)) < 1e-5 *. (1. +. sum2))

let () =
  Alcotest.run "eigen"
    [ ( "known",
        [ Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "2x2" `Quick test_known_2x2;
          Alcotest.test_case "indefinite" `Quick test_indefinite;
          Alcotest.test_case "1x1" `Quick test_1x1 ] );
      ( "invariants",
        [ Alcotest.test_case "reconstruction" `Quick test_reconstruction;
          Alcotest.test_case "orthonormal" `Quick test_orthonormal_vectors;
          Alcotest.test_case "eigen equation" `Quick test_eigen_equation;
          Alcotest.test_case "trace" `Quick test_trace_is_sum;
          Alcotest.test_case "top_k" `Quick test_top_k ] );
      ( "contract",
        [ Alcotest.test_case "asymmetric input symmetrized" `Quick
            test_asymmetric_input_symmetrized ] );
      ("errors", [ Alcotest.test_case "not square" `Quick test_not_square ]);
      ( "properties",
        [ prop_psd_eigenvalues_nonneg; prop_values_sorted; prop_frobenius_invariant ] );
      ( "methods",
        [ Alcotest.test_case "TCCA_EIG parsing" `Quick test_method_of_env;
          Alcotest.test_case "sweep cap surfaced (both methods)" `Quick
            test_sweep_cap_surfaced;
          Alcotest.test_case "pool-size determinism" `Quick test_pool_determinism;
          prop_methods_agree_spd;
          prop_methods_agree_symmetric;
          prop_methods_agree_degenerate;
          prop_tridiagonal_orthogonal;
          prop_tridiagonal_eigen_equation ] ) ]
