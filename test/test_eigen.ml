open Test_support

let test_diagonal () =
  let a = Mat.diag_of_vec [| 3.; 1.; 2. |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-12 "sorted eigenvalues" [| 3.; 2.; 1. |] values

let test_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let { Eigen.values; vectors } = Eigen.decompose a in
  check_vec ~eps:1e-10 "values" [| 3.; 1. |] values;
  (* Eigenvector for 3 is (1,1)/√2 up to sign. *)
  let v0 = Mat.col vectors 0 in
  check_float ~eps:1e-10 "direction" 1. (Float.abs (v0.(0) /. v0.(1)))

let test_reconstruction () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = random_spd r 8 in
    let eig = Eigen.decompose a in
    check_mat ~eps:1e-7 "V Λ Vᵀ = A" a (Eigen.reconstruct eig)
  done

let test_orthonormal_vectors () =
  let r = rng () in
  let a = random_spd r 10 in
  let { Eigen.vectors; _ } = Eigen.decompose a in
  check_mat ~eps:1e-8 "VᵀV = I" (Mat.identity 10) (Mat.tgram vectors)

let test_eigen_equation () =
  let r = rng () in
  let a = random_spd r 7 in
  let { Eigen.values; vectors } = Eigen.decompose a in
  for k = 0 to 6 do
    let v = Mat.col vectors k in
    let av = Mat.mul_vec a v in
    check_true
      (Printf.sprintf "A v = λ v (k=%d)" k)
      (Vec.norm (Vec.sub av (Vec.scale values.(k) v)) < 1e-7 *. (1. +. Float.abs values.(k)))
  done

let test_trace_is_sum () =
  let r = rng () in
  let a = random_spd r 9 in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_float ~eps:1e-7 "trace = Σλ" (Mat.trace a) (Vec.sum values)

let test_indefinite () =
  (* Symmetric but indefinite: eigenvalues ±1. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-10 "±1" [| 1.; -1. |] values

let test_top_k () =
  let r = rng () in
  let a = random_spd r 6 in
  let eig = Eigen.decompose a in
  let top = Eigen.top_k eig 2 in
  Alcotest.(check (pair int int)) "shape" (6, 2) (Mat.dims top);
  check_vec ~eps:1e-12 "first column" (Mat.col eig.Eigen.vectors 0) (Mat.col top 0)

let test_asymmetric_input_symmetrized () =
  (* The contract (see eigen.mli) is that BOTH triangles are read and the
     input is decomposed as its symmetric part (a + aᵀ)/2 — not as the
     upper triangle mirrored.  [[2,1],[0,2]] symmetrizes to [[2,.5],[.5,2]]
     (eigenvalues 2.5, 1.5); an upper-triangle-only read would give 3, 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 0.; 2. |] |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_vec ~eps:1e-10 "symmetric-part eigenvalues" [| 2.5; 1.5 |] values;
  let r = rng () in
  let b = random_mat r 6 6 in
  let sym = Mat.init 6 6 (fun i j -> 0.5 *. (Mat.get b i j +. Mat.get b j i)) in
  check_vec ~eps:1e-9 "random: decompose a = decompose sym(a)"
    (Eigen.decompose sym).Eigen.values (Eigen.decompose b).Eigen.values

let test_not_square () =
  Alcotest.check_raises "not square" (Invalid_argument "Eigen.decompose: not square")
    (fun () -> ignore (Eigen.decompose (Mat.create 2 3)))

let test_1x1 () =
  let { Eigen.values; vectors } = Eigen.decompose (Mat.of_arrays [| [| 5. |] |]) in
  check_vec "value" [| 5. |] values;
  check_float "vector" 1. (Float.abs (Mat.get vectors 0 0))

let prop_psd_eigenvalues_nonneg =
  qtest ~count:60 "SPD eigenvalues > 0" gen_spd (fun a ->
      Array.for_all (fun l -> l > 0.) (Eigen.decompose a).Eigen.values)

let prop_values_sorted =
  qtest ~count:60 "eigenvalues descending" gen_spd (fun a ->
      let v = (Eigen.decompose a).Eigen.values in
      let ok = ref true in
      for i = 1 to Array.length v - 1 do
        if v.(i) > v.(i - 1) +. 1e-12 then ok := false
      done;
      !ok)

let prop_frobenius_invariant =
  qtest ~count:60 "‖A‖F² = Σλ² for symmetric A" gen_spd (fun a ->
      let v = (Eigen.decompose a).Eigen.values in
      let sum2 = Array.fold_left (fun acc l -> acc +. (l *. l)) 0. v in
      Float.abs (sum2 -. (Mat.frobenius a ** 2.)) < 1e-5 *. (1. +. sum2))

let () =
  Alcotest.run "eigen"
    [ ( "known",
        [ Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "2x2" `Quick test_known_2x2;
          Alcotest.test_case "indefinite" `Quick test_indefinite;
          Alcotest.test_case "1x1" `Quick test_1x1 ] );
      ( "invariants",
        [ Alcotest.test_case "reconstruction" `Quick test_reconstruction;
          Alcotest.test_case "orthonormal" `Quick test_orthonormal_vectors;
          Alcotest.test_case "eigen equation" `Quick test_eigen_equation;
          Alcotest.test_case "trace" `Quick test_trace_is_sum;
          Alcotest.test_case "top_k" `Quick test_top_k ] );
      ( "contract",
        [ Alcotest.test_case "asymmetric input symmetrized" `Quick
            test_asymmetric_input_symmetrized ] );
      ("errors", [ Alcotest.test_case "not square" `Quick test_not_square ]);
      ( "properties",
        [ prop_psd_eigenvalues_nonneg; prop_values_sorted; prop_frobenius_invariant ] ) ]
