open Test_support

let a22 = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |]
let b22 = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |]

let test_construction () =
  let m = Mat.init 2 3 (fun i j -> float_of_int ((i * 10) + j)) in
  check_float "get" 12. (Mat.get m 1 2);
  Alcotest.(check (pair int int)) "dims" (2, 3) (Mat.dims m);
  check_mat "identity"
    (Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |])
    (Mat.identity 2);
  check_mat "diag"
    (Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |])
    (Mat.diag_of_vec [| 2.; 3. |])

let test_of_cols () =
  let m = Mat.of_cols [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_mat "columns laid out" (Mat.of_arrays [| [| 1.; 3. |]; [| 2.; 4. |] |]) m

let test_ragged () =
  Alcotest.check_raises "ragged rejected" (Invalid_argument "Mat.of_arrays: ragged rows")
    (fun () -> ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_mul_known () =
  check_mat "2x2 product"
    (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (Mat.mul a22 b22)

let test_mul_identity () =
  let r = rng () in
  let m = random_mat r 4 6 in
  check_mat "I·m = m" m (Mat.mul (Mat.identity 4) m);
  check_mat "m·I = m" m (Mat.mul m (Mat.identity 6))

let test_mul_mismatch () =
  Alcotest.check_raises "inner mismatch" (Invalid_argument "Mat.mul: inner dimension mismatch")
    (fun () -> ignore (Mat.mul (Mat.create 2 3) (Mat.create 2 3)))

let test_transpose () =
  let r = rng () in
  let m = random_mat r 3 5 in
  check_mat "double transpose" m (Mat.transpose (Mat.transpose m));
  check_float "entry" (Mat.get m 1 4) (Mat.get (Mat.transpose m) 4 1)

let test_mul_vec () =
  check_vec "A x" [| 5.; 11. |] (Mat.mul_vec a22 [| 1.; 2. |]);
  check_vec "Aᵀ x" [| 7.; 10. |] (Mat.tmul_vec a22 [| 1.; 2. |])

let test_gram_variants () =
  let r = rng () in
  let m = random_mat r 4 7 in
  check_mat ~eps:1e-9 "gram = m mᵀ" (Mat.mul m (Mat.transpose m)) (Mat.gram m);
  check_mat ~eps:1e-9 "tgram = mᵀ m" (Mat.mul (Mat.transpose m) m) (Mat.tgram m);
  let b = random_mat r 4 3 in
  check_mat ~eps:1e-9 "mul_tn" (Mat.mul (Mat.transpose m) b) (Mat.mul_tn m b);
  let c = random_mat r 5 7 in
  check_mat ~eps:1e-9 "mul_nt" (Mat.mul m (Mat.transpose c)) (Mat.mul_nt m c)

let test_rows_cols () =
  let m = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  check_vec "row" [| 4.; 5.; 6. |] (Mat.row m 1);
  check_vec "col" [| 2.; 5. |] (Mat.col m 1);
  let m2 = Mat.copy m in
  Mat.set_row m2 0 [| 9.; 9.; 9. |];
  check_vec "set_row" [| 9.; 9.; 9. |] (Mat.row m2 0);
  Mat.set_col m2 2 [| 1.; 1. |];
  check_vec "set_col" [| 1.; 1. |] (Mat.col m2 2)

let test_slices () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((i * 4) + j)) in
  check_mat "sub_cols"
    (Mat.of_arrays [| [| 1.; 2. |]; [| 5.; 6. |]; [| 9.; 10. |] |])
    (Mat.sub_cols m 1 2);
  check_mat "sub_rows"
    (Mat.of_arrays [| [| 4.; 5.; 6.; 7. |] |])
    (Mat.sub_rows m 1 1);
  check_mat "select_cols"
    (Mat.of_arrays [| [| 3.; 0. |]; [| 7.; 4. |]; [| 11.; 8. |] |])
    (Mat.select_cols m [| 3; 0 |])

let test_cat () =
  check_mat "hcat"
    (Mat.of_arrays [| [| 1.; 2.; 5.; 6. |]; [| 3.; 4.; 7.; 8. |] |])
    (Mat.hcat a22 b22);
  check_mat "vcat"
    (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |]; [| 7.; 8. |] |])
    (Mat.vcat a22 b22)

let test_reductions () =
  check_float "trace" 5. (Mat.trace a22);
  check_float "frobenius" (sqrt 30.) (Mat.frobenius a22);
  check_float "max_abs" 4. (Mat.max_abs a22)

let test_center_rows () =
  let m = Mat.of_arrays [| [| 1.; 3. |]; [| 10.; 20. |] |] in
  let centered, means = Mat.center_rows m in
  check_vec "means" [| 2.; 15. |] means;
  check_mat "centered" (Mat.of_arrays [| [| -1.; 1. |]; [| -5.; 5. |] |]) centered

let test_add_scaled_identity () =
  check_mat "a + 2I"
    (Mat.of_arrays [| [| 3.; 2. |]; [| 3.; 6. |] |])
    (Mat.add_scaled_identity 2. a22)

let test_is_symmetric () =
  check_true "gram symmetric" (Mat.is_symmetric (Mat.gram a22));
  check_true "a22 not symmetric" (not (Mat.is_symmetric a22))

let prop_mul_associative =
  qtest ~count:50 "associativity (A·B)·C = A·(B·C)"
    QCheck2.Gen.(
      quad (int_range 1 5) (int_range 1 5) (int_range 1 5) (int_range 1 5)
      >>= fun (a, b, c, d) ->
      triple
        (array_size (return (a * b)) (float_range (-3.) 3.))
        (array_size (return (b * c)) (float_range (-3.) 3.))
        (array_size (return (c * d)) (float_range (-3.) 3.))
      >|= fun (x, y, z) ->
      ( Mat.unsafe_of_flat ~rows:a ~cols:b x,
        Mat.unsafe_of_flat ~rows:b ~cols:c y,
        Mat.unsafe_of_flat ~rows:c ~cols:d z ))
    (fun (x, y, z) ->
      Mat.equal ~eps:1e-6 (Mat.mul (Mat.mul x y) z) (Mat.mul x (Mat.mul y z)))

let prop_transpose_product =
  qtest ~count:50 "(AB)ᵀ = BᵀAᵀ"
    QCheck2.Gen.(
      triple (int_range 1 6) (int_range 1 6) (int_range 1 6) >>= fun (a, b, c) ->
      pair
        (array_size (return (a * b)) (float_range (-3.) 3.))
        (array_size (return (b * c)) (float_range (-3.) 3.))
      >|= fun (x, y) ->
      (Mat.unsafe_of_flat ~rows:a ~cols:b x, Mat.unsafe_of_flat ~rows:b ~cols:c y))
    (fun (x, y) ->
      Mat.equal ~eps:1e-7 (Mat.transpose (Mat.mul x y))
        (Mat.mul (Mat.transpose y) (Mat.transpose x)))

let prop_trace_cyclic =
  qtest ~count:50 "tr(AB) = tr(BA)"
    QCheck2.Gen.(
      pair (int_range 1 6) (int_range 1 6) >>= fun (a, b) ->
      pair
        (array_size (return (a * b)) (float_range (-3.) 3.))
        (array_size (return (b * a)) (float_range (-3.) 3.))
      >|= fun (x, y) ->
      (Mat.unsafe_of_flat ~rows:a ~cols:b x, Mat.unsafe_of_flat ~rows:b ~cols:a y))
    (fun (x, y) ->
      Float.abs (Mat.trace (Mat.mul x y) -. Mat.trace (Mat.mul y x)) < 1e-6)

let prop_gram_psd_diag =
  qtest "gram diagonal non-negative" gen_mat (fun m ->
      Array.for_all (fun v -> v >= -1e-9) (Mat.diag (Mat.gram m)))

(* ------------------------------------------------------------------ *)
(* Parallel kernels vs. bit-exact sequential references.

   Each reference below replays the kernels' documented per-cell
   floating-point accumulation contract — every cell is the sum of its k
   products taken in ascending inner index, from +0., with no zero skips —
   so [Mat]'s pool-partitioned implementations must agree *bitwise* — not
   approximately — at every pool size, including the TCCA_DOMAINS=1
   sequential fallback, and under both TCCA_GEMM implementations.  Shapes
   include empty (0×n) and degenerate (1×n) matrices. *)

let ref_mul a b =
  let m = a.Mat.rows and n = b.Mat.cols and k = a.Mat.cols in
  let c = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for l = 0 to k - 1 do
      let av = a.Mat.data.((i * k) + l) in
      for j = 0 to n - 1 do
        c.((i * n) + j) <- c.((i * n) + j) +. (av *. b.Mat.data.((l * n) + j))
      done
    done
  done;
  Mat.unsafe_of_flat ~rows:m ~cols:n c

let ref_mul_tn a b =
  let m = a.Mat.cols and n = b.Mat.cols in
  let c = Array.make (m * n) 0. in
  for l = 0 to a.Mat.rows - 1 do
    for i = 0 to m - 1 do
      let av = a.Mat.data.((l * m) + i) in
      for j = 0 to n - 1 do
        c.((i * n) + j) <- c.((i * n) + j) +. (av *. b.Mat.data.((l * n) + j))
      done
    done
  done;
  Mat.unsafe_of_flat ~rows:m ~cols:n c

let ref_mul_nt a b =
  let m = a.Mat.rows and n = b.Mat.rows and k = a.Mat.cols in
  Mat.init m n (fun i j ->
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (a.Mat.data.((i * k) + l) *. b.Mat.data.((j * k) + l))
      done;
      !acc)

let ref_gram a =
  let m = a.Mat.rows and k = a.Mat.cols in
  let c = Array.make (m * m) 0. in
  for i = 0 to m - 1 do
    for j = i to m - 1 do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (a.Mat.data.((i * k) + l) *. a.Mat.data.((j * k) + l))
      done;
      c.((i * m) + j) <- !acc;
      c.((j * m) + i) <- !acc
    done
  done;
  Mat.unsafe_of_flat ~rows:m ~cols:m c

let ref_tgram a =
  let n = a.Mat.cols in
  let c = Array.make (n * n) 0. in
  for l = 0 to a.Mat.rows - 1 do
    for i = 0 to n - 1 do
      let ai = a.Mat.data.((l * n) + i) in
      for j = i to n - 1 do
        c.((i * n) + j) <- c.((i * n) + j) +. (ai *. a.Mat.data.((l * n) + j))
      done
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      c.((i * n) + j) <- c.((j * n) + i)
    done
  done;
  Mat.unsafe_of_flat ~rows:n ~cols:n c

let bits_equal x y =
  Mat.dims x = Mat.dims y
  && Array.for_all2
       (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
       x.Mat.data y.Mat.data

(* Entries mix exact zeros in so the kernels' zero-skip branches are hit. *)
let gen_entry = QCheck2.Gen.(frequency [ (1, pure 0.); (4, float_range (-10.) 10.) ])

let gen_mat_dims lo hi =
  QCheck2.Gen.(
    pair (int_range lo hi) (int_range lo hi) >>= fun (r, c) ->
    array_size (return (r * c)) gen_entry >|= fun data ->
    Mat.unsafe_of_flat ~rows:r ~cols:c data)

let gen_parallel_case =
  (* (a, b) with a : m×k and b : k×n; m, n, k range down to 0 so empty and
     1×n edge shapes are generated. *)
  QCheck2.Gen.(
    triple (int_range 0 9) (int_range 0 9) (int_range 0 9) >>= fun (m, k, n) ->
    pair (array_size (return (m * k)) gen_entry) (array_size (return (k * n)) gen_entry)
    >|= fun (x, y) ->
    (Mat.unsafe_of_flat ~rows:m ~cols:k x, Mat.unsafe_of_flat ~rows:k ~cols:n y))

let with_pool size f =
  Parallel.set_num_domains size;
  Parallel.set_sequential_cutoff 0;
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_num_domains 1;
      Parallel.set_sequential_cutoff Parallel.default_cutoff)
    f

let agree_at_all_pool_sizes reference compute =
  let expected = reference () in
  List.for_all (fun size -> with_pool size (fun () -> bits_equal expected (compute ()))) [ 1; 2; 4 ]

let prop_parallel_mul_bitwise =
  qtest ~count:75 "parallel mul bitwise = sequential reference" gen_parallel_case
    (fun (a, b) -> agree_at_all_pool_sizes (fun () -> ref_mul a b) (fun () -> Mat.mul a b))

let prop_parallel_mul_tn_bitwise =
  qtest ~count:75 "parallel mul_tn/mul_nt bitwise = sequential reference" gen_parallel_case
    (fun (a, b) ->
      (* mul_tn wants its first operand stored transposed: aᵀ is k×m. *)
      let at = Mat.transpose a in
      agree_at_all_pool_sizes (fun () -> ref_mul_tn at b) (fun () -> Mat.mul_tn at b)
      && agree_at_all_pool_sizes
           (fun () -> ref_mul_nt a (Mat.transpose b))
           (fun () -> Mat.mul_nt a (Mat.transpose b)))

let prop_parallel_gram_bitwise =
  qtest ~count:75 "parallel gram/tgram bitwise = sequential reference" (gen_mat_dims 0 9)
    (fun m ->
      agree_at_all_pool_sizes (fun () -> ref_gram m) (fun () -> Mat.gram m)
      && agree_at_all_pool_sizes (fun () -> ref_tgram m) (fun () -> Mat.tgram m))

(* ------------------------------------------------------------------ *)
(* Microkernel vs. naive oracle.

   The packed microkernel must agree bitwise with the straightforward
   loops on every shape — the accumulation contract says blocking only
   reorders which cells are in flight, never the terms within a cell.
   [with_impl] pins the implementation and forces [small_cutoff] to 0 so
   the microkernel genuinely runs even on shapes far below the dispatch
   threshold (a 1×k×1 product would otherwise always take the naive
   route).  Dimensions are chosen adversarially for a 4×4 register tile:
   degenerate (0, 1×k×1), below one tile, exactly one tile, straddling
   tile and panel boundaries, and primes that never divide evenly. *)

let with_impl impl f =
  let cutoff = Gemm.small_cutoff () in
  Gemm.set_impl impl;
  Gemm.set_small_cutoff 0;
  Fun.protect
    ~finally:(fun () ->
      Gemm.reset_impl ();
      Gemm.set_small_cutoff cutoff)
    f

let gen_adversarial_dim =
  QCheck2.Gen.(
    frequency
      [ (3, int_range 0 9);
        (2, oneofl [ 1; 2; 3; 4; 5 ]);
        (2, oneofl [ 7; 11; 13; 17 ]);
        (1, oneofl [ 16; 31; 33 ]) ])

let gen_adversarial_case =
  QCheck2.Gen.(
    triple gen_adversarial_dim gen_adversarial_dim gen_adversarial_dim
    >>= fun (m, k, n) ->
    pair (array_size (return (m * k)) gen_entry) (array_size (return (k * n)) gen_entry)
    >|= fun (x, y) ->
    (Mat.unsafe_of_flat ~rows:m ~cols:k x, Mat.unsafe_of_flat ~rows:k ~cols:n y))

let gen_adversarial_mat =
  QCheck2.Gen.(
    pair gen_adversarial_dim gen_adversarial_dim >>= fun (r, c) ->
    array_size (return (r * c)) gen_entry >|= fun data ->
    Mat.unsafe_of_flat ~rows:r ~cols:c data)

(* Naive oracle once, then the microkernel at pool sizes 1 and 4. *)
let micro_matches_naive compute =
  let expected = with_impl `Naive compute in
  List.for_all
    (fun size ->
      with_pool size (fun () -> bits_equal expected (with_impl `Microkernel compute)))
    [ 1; 4 ]

let prop_microkernel_vs_naive_mul =
  qtest ~count:100 "microkernel bitwise = naive oracle (mul/mul_tn/mul_nt)"
    gen_adversarial_case (fun (a, b) ->
      micro_matches_naive (fun () -> Mat.mul a b)
      && micro_matches_naive (fun () -> Mat.mul_tn (Mat.transpose a) b)
      && micro_matches_naive (fun () -> Mat.mul_nt a (Mat.transpose b)))

let prop_microkernel_vs_naive_gram =
  qtest ~count:100 "microkernel bitwise = naive oracle (gram/tgram)" gen_adversarial_mat
    (fun m ->
      micro_matches_naive (fun () -> Mat.gram m)
      && micro_matches_naive (fun () -> Mat.tgram m))

(* Transposed-operand entry points vs. an explicit transpose: IEEE
   multiplication commutes bitwise, and both routes accumulate the same
   terms ascending in k, so the packed-walk variants must equal
   mul-with-materialized-transpose exactly — under the microkernel, at
   pool sizes 1 and 4. *)
let transpose_consistent a b =
  List.for_all
    (fun size ->
      with_pool size (fun () ->
          with_impl `Microkernel (fun () ->
              let at = Mat.transpose a and bt = Mat.transpose b in
              bits_equal (Mat.mul_tn at b) (Mat.mul (Mat.transpose at) b)
              && bits_equal (Mat.mul_nt a bt) (Mat.mul a (Mat.transpose bt))
              && bits_equal (Mat.gram a) (Mat.mul a (Mat.transpose a))
              && bits_equal (Mat.tgram a) (Mat.mul (Mat.transpose a) a))))
    [ 1; 4 ]

let prop_transpose_consistency =
  qtest ~count:100 "mul_tn/mul_nt/gram/tgram ≡ mul with explicit transpose (bitwise)"
    gen_adversarial_case (fun (a, b) -> transpose_consistent a b)

let () =
  Alcotest.run "mat"
    [ ( "construction",
        [ Alcotest.test_case "basic" `Quick test_construction;
          Alcotest.test_case "of_cols" `Quick test_of_cols;
          Alcotest.test_case "ragged" `Quick test_ragged ] );
      ( "products",
        [ Alcotest.test_case "known" `Quick test_mul_known;
          Alcotest.test_case "identity" `Quick test_mul_identity;
          Alcotest.test_case "mismatch" `Quick test_mul_mismatch;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "matvec" `Quick test_mul_vec;
          Alcotest.test_case "gram variants" `Quick test_gram_variants ] );
      ( "access",
        [ Alcotest.test_case "rows/cols" `Quick test_rows_cols;
          Alcotest.test_case "slices" `Quick test_slices;
          Alcotest.test_case "cat" `Quick test_cat ] );
      ( "reductions",
        [ Alcotest.test_case "trace/frobenius" `Quick test_reductions;
          Alcotest.test_case "center rows" `Quick test_center_rows;
          Alcotest.test_case "ridge" `Quick test_add_scaled_identity;
          Alcotest.test_case "symmetry" `Quick test_is_symmetric ] );
      ( "properties",
        [ prop_mul_associative; prop_transpose_product; prop_trace_cyclic;
          prop_gram_psd_diag ] );
      ( "parallel-bitwise",
        [ prop_parallel_mul_bitwise; prop_parallel_mul_tn_bitwise;
          prop_parallel_gram_bitwise ] );
      ( "gemm-equivalence",
        [ prop_microkernel_vs_naive_mul; prop_microkernel_vs_naive_gram;
          prop_transpose_consistency ] ) ]
