open Test_support

let sample_data () =
  let r = rng () in
  Mat.map Float.abs (random_mat r 6 20)

let test_linear_gram () =
  let x = sample_data () in
  let f = Kernel.fit Kernel.Linear x in
  check_mat ~eps:1e-10 "gram = XᵀX" (Mat.tgram x) (Kernel.gram f)

let test_exp_kernel_range () =
  let x = sample_data () in
  let f = Kernel.fit (Kernel.Exp_distance Distance.L2) x in
  let k = Kernel.gram f in
  let n, _ = Mat.dims k in
  for i = 0 to n - 1 do
    check_float ~eps:1e-12 "self similarity 1" 1. (Mat.get k i i);
    for j = 0 to n - 1 do
      let v = Mat.get k i j in
      check_true "in (0,1]" (v > 0. && v <= 1. +. 1e-12)
    done
  done;
  (* Bandwidth = max distance means the smallest entry is exp(-1). *)
  let mn = ref infinity in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      mn := Float.min !mn (Mat.get k i j)
    done
  done;
  check_float ~eps:1e-9 "min entry = e^-1" (exp (-1.)) !mn

let test_bandwidth_frozen () =
  let x = sample_data () in
  let f = Kernel.fit (Kernel.Exp_distance Distance.L2) x in
  match Kernel.bandwidth f with
  | None -> Alcotest.fail "expected a bandwidth"
  | Some lam ->
    check_float ~eps:1e-9 "lambda is max distance"
      (Distance.max_entry (Distance.pairwise Distance.L2 x))
      lam

let test_cross_consistent_with_gram () =
  let x = sample_data () in
  let f = Kernel.fit (Kernel.Exp_distance Distance.Chi2) x in
  check_mat ~eps:1e-10 "cross on train = gram" (Kernel.gram f) (Kernel.cross f x)

let test_gram_psd () =
  let x = sample_data () in
  List.iter
    (fun kind -> check_true "psd" (Kernel.is_psd (Kernel.gram (Kernel.fit kind x))))
    [ Kernel.Linear; Kernel.Rbf 0.5 ]

let test_center () =
  let x = sample_data () in
  let k = Kernel.gram (Kernel.fit Kernel.Linear x) in
  let c = Kernel.center k in
  let n, _ = Mat.dims c in
  (* Row sums of a double-centered matrix vanish. *)
  for i = 0 to n - 1 do
    check_float ~eps:1e-8 "row sum 0" 0. (Vec.sum (Mat.row c i))
  done;
  check_true "still symmetric" (Mat.is_symmetric ~eps:1e-8 c)

let test_center_matches_feature_centering () =
  (* Double-centering the linear Gram equals the Gram of centered features. *)
  let x = sample_data () in
  let k = Kernel.gram (Kernel.fit Kernel.Linear x) in
  let xc = fst (Mat.center_rows x) in
  check_mat ~eps:1e-8 "HKH = Gram(centered)" (Mat.tgram xc) (Kernel.center k)

let test_normalize_unit_diag () =
  let x = sample_data () in
  let k = Kernel.gram (Kernel.fit Kernel.Linear x) in
  let nk = Kernel.normalize_unit_diag k in
  let n, _ = Mat.dims nk in
  for i = 0 to n - 1 do
    check_float ~eps:1e-9 "unit diagonal" 1. (Mat.get nk i i)
  done

let test_average () =
  let a = Mat.identity 3 and b = Mat.make 3 3 1. in
  let avg = Kernel.average [ a; b ] in
  check_float "diag" 1. (Mat.get avg 0 0);
  check_float "offdiag" 0.5 (Mat.get avg 0 1)

let test_fit_gram_single_pass () =
  (* Regression: [fit] keeps the fitted distance matrix, so [fit] + [gram]
     (+ any number of further [gram] calls) is ONE O(N²·d) pairwise pass. *)
  let x = sample_data () in
  let before = Distance.pairwise_count () in
  let f = Kernel.fit (Kernel.Exp_distance Distance.L2) x in
  let k1 = Kernel.gram f in
  let k2 = Kernel.gram f in
  Alcotest.(check int) "one pairwise sweep" (before + 1) (Distance.pairwise_count ());
  check_mat ~eps:0. "grams identical" k1 k2

let test_streaming_fit_matches_precomputed () =
  let x = sample_data () in
  let before = Distance.pairwise_count () in
  let fs = Kernel.fit ~precompute:false (Kernel.Exp_distance Distance.L2) x in
  (* The streaming bandwidth pass never materializes (or counts as) a
     pairwise sweep... *)
  Alcotest.(check int) "no pairwise sweep" before (Distance.pairwise_count ());
  let fp = Kernel.fit (Kernel.Exp_distance Distance.L2) x in
  (* ...yet freezes the identical λ and produces the identical Gram. *)
  check_float "same bandwidth"
    (Option.get (Kernel.bandwidth fp))
    (Option.get (Kernel.bandwidth fs));
  check_mat ~eps:0. "same gram" (Kernel.gram fp) (Kernel.gram fs)

let test_oracle_matches_gram () =
  let x = sample_data () in
  let f = Kernel.fit ~precompute:false (Kernel.Exp_distance Distance.Chi2) x in
  let o = Kernel.oracle f in
  let k = Kernel.gram f in
  let n = fst (Mat.dims k) in
  Alcotest.(check int) "oracle dim" n o.Pchol.o_dim;
  let diag = o.Pchol.o_diag () in
  for i = 0 to n - 1 do
    check_float ~eps:1e-12 "diag entry" (Mat.get k i i) diag.(i)
  done;
  let j = 3 in
  let col = o.Pchol.o_column j in
  for i = 0 to n - 1 do
    check_float ~eps:1e-12 "column entry" (Mat.get k i j) col.(i)
  done

let test_rbf () =
  let x = Mat.of_cols [| [| 0. |]; [| 1. |] |] in
  let k = Kernel.gram (Kernel.fit (Kernel.Rbf 2.) x) in
  check_float ~eps:1e-12 "exp(-2·1)" (exp (-2.)) (Mat.get k 0 1)

let () =
  Alcotest.run "kernel"
    [ ( "grams",
        [ Alcotest.test_case "linear" `Quick test_linear_gram;
          Alcotest.test_case "exp range" `Quick test_exp_kernel_range;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth_frozen;
          Alcotest.test_case "cross consistency" `Quick test_cross_consistent_with_gram;
          Alcotest.test_case "psd" `Quick test_gram_psd;
          Alcotest.test_case "rbf" `Quick test_rbf ] );
      ( "transforms",
        [ Alcotest.test_case "center" `Quick test_center;
          Alcotest.test_case "center = feature centering" `Quick
            test_center_matches_feature_centering;
          Alcotest.test_case "normalize" `Quick test_normalize_unit_diag;
          Alcotest.test_case "average" `Quick test_average ] );
      ( "scaling path",
        [ Alcotest.test_case "fit+gram = one pairwise pass" `Quick test_fit_gram_single_pass;
          Alcotest.test_case "streaming fit matches" `Quick
            test_streaming_fit_matches_precomputed;
          Alcotest.test_case "oracle matches gram" `Quick test_oracle_matches_gram ] ) ]
