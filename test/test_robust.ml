(* The numerics-guardrail layer: injection semantics, escalation ladders, and
   end-to-end proof that every degradation path through the TCCA/KTCCA fits
   ends in a recovered model or a typed [Robust.failure] — never a silent
   NaN model.  CI runs this binary at TCCA_DOMAINS=1 and 4. *)

open Test_support

let random_views r ~dims ~n = Array.map (fun d -> random_mat r d n) dims

let finite_mat m = Mat.all_finite m

(* ------------------------------------------------------------------ *)
(* Injection hook semantics *)

let test_inject_default_off () =
  Robust.Inject.reset ();
  check_true "disabled by default" (not (Robust.Inject.enabled ()));
  check_true "no stage active" (not Robust.Inject.(active Als_nan))

let test_inject_arm_disarm () =
  Robust.Inject.reset ();
  Robust.Inject.(arm Sweep_cap);
  check_true "enabled after arm" (Robust.Inject.enabled ());
  check_true "armed stage active" Robust.Inject.(active Sweep_cap);
  check_true "other stage inactive" (not Robust.Inject.(active Als_nan));
  Robust.Inject.(disarm Sweep_cap);
  check_true "inactive after disarm" (not Robust.Inject.(active Sweep_cap));
  Robust.Inject.reset ()

let test_inject_with_stage_restores () =
  Robust.Inject.reset ();
  Robust.Inject.(with_stage Als_nan (fun () ->
      check_true "active inside" (active Als_nan)));
  check_true "restored after" (not Robust.Inject.(active Als_nan));
  (* Restored even when the thunk raises. *)
  (try
     Robust.Inject.(with_stage Als_nan (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_true "restored after exception" (not Robust.Inject.(active Als_nan))

(* ------------------------------------------------------------------ *)
(* Warning ring buffer *)

let test_warning_ring () =
  Robust.clear_warnings ();
  check_true "empty after clear" (Robust.recent_warnings () = []);
  Robust.warnf "event %d" 1;
  Robust.warnf "event %d" 2;
  (match Robust.recent_warnings () with
  | [ a; b ] ->
    check_true "oldest first" (a = "event 1" && b = "event 2")
  | ws -> Alcotest.failf "expected 2 warnings, got %d" (List.length ws));
  Robust.clear_warnings ()

let test_warning_ring_domain_safe () =
  (* Guardrails fire inside parallel regions: hammer the ring from several
     domains at once.  Under the mutex this must neither crash, nor tear an
     entry, nor lose the concurrent reader. *)
  Robust.clear_warnings ();
  let per_domain = 200 in
  let writers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Robust.warnf "domain %d event %d" d i;
              if i mod 50 = 0 then ignore (Robust.recent_warnings ())
            done))
  in
  Array.iter Domain.join writers;
  let ws = Robust.recent_warnings () in
  check_true "ring non-empty" (ws <> []);
  (* Every surviving entry is well-formed (no torn strings). *)
  check_true "entries intact"
    (List.for_all (fun w -> String.length w >= 14 && String.sub w 0 7 = "domain ") ws);
  Robust.clear_warnings ()

let test_drain_warnings () =
  Robust.clear_warnings ();
  Robust.warnf "drain me %d" 1;
  Robust.warnf "drain me %d" 2;
  (match Robust.drain_warnings () with
  | [ a; b ] -> check_true "oldest first" (a = "drain me 1" && b = "drain me 2")
  | ws -> Alcotest.failf "expected 2 drained, got %d" (List.length ws));
  check_true "ring empty after drain" (Robust.recent_warnings () = []);
  check_true "second drain empty" (Robust.drain_warnings () = [])

let test_drain_warnings_partitions () =
  (* Concurrent drains racing concurrent writers: an entry lands in at most
     one drained batch — never two (the ring may evict past its 64-entry
     cap, so "lost to eviction" is allowed; duplication never is). *)
  Robust.clear_warnings ();
  let per_domain = 100 in
  let drained = Array.make 4 [] in
  let writers =
    Array.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Robust.warnf "w%d-%d" d i
            done))
  in
  let drainers =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            for _ = 1 to 20 do
              drained.(k) <- drained.(k) @ Robust.drain_warnings ()
            done))
  in
  Array.iter Domain.join writers;
  Array.iter Domain.join drainers;
  let rest = Robust.drain_warnings () in
  let all = List.sort compare (List.concat (rest :: Array.to_list drained)) in
  check_true "nothing drained twice"
    (List.length all = List.length (List.sort_uniq compare all));
  check_true "nothing invented" (List.length all <= 2 * per_domain);
  check_true "entries intact"
    (List.for_all (fun w -> String.length w >= 4 && w.[0] = 'w') all);
  Robust.clear_warnings ()

let test_failure_printing () =
  let failures =
    [ Robust.Not_converged { stage = "cp_als"; sweeps = 7; residual = 0.5 };
      Robust.Not_positive_definite
        { stage = "ktcca.whiten view 0"; pivot = 3; value = -1.; jitter_tried = 1e-8 };
      Robust.Non_finite { stage = "tcca.prepare"; where = "input matrix" };
      Robust.Rank_deficient { view = 1; rank = 0; dim = 5 };
      Robust.Deadline_exceeded
        { stage = "cp_als"; sweeps = 42; elapsed = 1.25; limit = "wall 2s" } ]
  in
  List.iter
    (fun f -> check_true "non-empty rendering" (String.length (Robust.failure_to_string f) > 0))
    failures;
  (* The registered printer makes an uncaught Error readable. *)
  check_true "exception printer"
    (String.length (Printexc.to_string (Robust.Error (List.hd failures))) > 0)

(* ------------------------------------------------------------------ *)
(* Linalg guardrails *)

let test_eigen_info_converges () =
  let r = rng () in
  let _, info = Eigen.decompose_info (random_spd r 6) in
  check_true "converged" info.Eigen.converged;
  check_true "did some sweeps" (info.Eigen.sweeps > 0)

let test_eigen_checked_nan () =
  let a = Mat.of_arrays [| [| nan; 0. |]; [| 0.; 1. |] |] in
  match Eigen.decompose_checked a with
  | Error (Robust.Non_finite _) -> ()
  | _ -> Alcotest.fail "NaN input must be Non_finite"

let test_eigen_sweep_cap_injection () =
  let r = rng () in
  let a = random_spd r 6 in
  Robust.Inject.(with_stage Sweep_cap (fun () ->
      match Eigen.decompose_checked a with
      | Error (Robust.Not_converged { sweeps; residual; _ }) ->
        check_true "zero sweeps" (sweeps = 0);
        check_true "positive residual" (residual > 0.)
      | _ -> Alcotest.fail "forced sweep cap must be Not_converged"))

let test_eigen_cap_warns () =
  let r = rng () in
  Robust.clear_warnings ();
  Robust.Inject.(with_stage Sweep_cap (fun () ->
      ignore (Eigen.decompose (random_spd r 5))));
  check_true "cap logged"
    (List.exists
       (fun w -> String.length w >= 5 && String.sub w 0 5 = "Eigen")
       (Robust.recent_warnings ()));
  Robust.clear_warnings ()

let test_svd_info_converges () =
  let r = rng () in
  let _, info = Svd.decompose_info (random_mat r 7 4) in
  check_true "converged" info.Svd.converged

let test_svd_checked_nan () =
  let a = Mat.of_arrays [| [| 1.; infinity |]; [| 0.; 1. |] |] in
  match Svd.decompose_checked a with
  | Error (Robust.Non_finite _) -> ()
  | _ -> Alcotest.fail "Inf input must be Non_finite"

let test_cholesky_jitter_recovers () =
  (* Indefinite by a hair: smallest eigenvalue −1e-13, within jitter reach. *)
  let r = rng () in
  let q = random_orthonormal r 5 5 in
  let d = [| 1.; 0.5; 0.2; 0.1; -1e-13 |] in
  let a =
    Mat.mul q (Mat.mul (Mat.init 5 5 (fun i j -> if i = j then d.(i) else 0.)) (Mat.transpose q))
  in
  Robust.clear_warnings ();
  match Cholesky.decompose_jittered a with
  | Ok (f, jitter) ->
    check_true "needed jitter" (jitter > 0.);
    check_true "retry logged" (Robust.recent_warnings () <> []);
    check_true "factor finite" (finite_mat (Cholesky.lower f));
    Robust.clear_warnings ()
  | Error e -> Alcotest.failf "should recover: %s" (Robust.failure_to_string e)

let test_cholesky_jitter_exhausted () =
  (* Genuinely indefinite: eigenvalues ±1, no roundoff-scale jitter helps. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  match Cholesky.decompose_jittered a with
  | Error (Robust.Not_positive_definite { jitter_tried; _ }) ->
    check_true "ladder was walked" (jitter_tried > 0.)
  | Ok _ -> Alcotest.fail "indefinite input factorized"
  | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)

let test_inv_sqrt_rank_report () =
  (* cov = 0 + ridge: every eigenvalue equals the shift — numerical rank 0. *)
  (match Matfun.inv_sqrt_psd_checked ~shift:0.1 ~stage:"t" (Mat.scale 0.1 (Mat.identity 4)) with
  | Ok (_, rank) -> Alcotest.(check int) "pure-ridge rank" 0 rank
  | Error e -> Alcotest.failf "unexpected: %s" (Robust.failure_to_string e));
  let r = rng () in
  let a = random_spd r 4 in
  match Matfun.inv_sqrt_psd_checked ~stage:"t" a with
  | Ok (w, rank) ->
    Alcotest.(check int) "full rank" 4 rank;
    (* Bit-compatibility with the historical whitener. *)
    check_mat ~eps:0. "same arithmetic as inv_sqrt_psd" (Matfun.inv_sqrt_psd a) w
  | Error e -> Alcotest.failf "unexpected: %s" (Robust.failure_to_string e)

(* ------------------------------------------------------------------ *)
(* CP-ALS guardrails *)

let test_cp_als_healthy_single_run () =
  let r = rng () in
  let t = random_tensor r [| 4; 5; 3 |] in
  let _, info = Cp_als.decompose ~rank:2 t in
  check_true "no failure" (info.Cp_als.failure = None);
  Alcotest.(check int) "single run" 1 (List.length info.Cp_als.runs)

let test_cp_als_nan_fit_stops_immediately () =
  (* Satellite fix: a NaN fit used to burn the full max_iter because
     |fit − prev| < tol is false for NaN.  Now every run stops at sweep 1. *)
  let r = rng () in
  let t = Tensor.map (fun v -> v +. nan) (random_tensor r [| 3; 4; 3 |]) in
  let _, info = Cp_als.decompose ~rank:2 t in
  check_true "not converged" (not info.Cp_als.converged);
  Alcotest.(check int) "stopped at first sweep" 1 info.Cp_als.iterations;
  (match info.Cp_als.failure with
  | Some (Robust.Non_finite { stage = "cp_als"; _ }) -> ()
  | _ -> Alcotest.fail "expected Non_finite cp_als failure");
  (* Restarts were attempted (default 2) and all failed the same way. *)
  Alcotest.(check int) "restart count" 3 (List.length info.Cp_als.runs);
  List.iter
    (fun run ->
      check_true "every run failed" (run.Cp_als.run_failure <> None);
      Alcotest.(check int) "every run stopped early" 1 run.Cp_als.run_iterations)
    info.Cp_als.runs

let test_cp_als_injection_deterministic () =
  let r = rng () in
  let t = random_tensor r [| 4; 4; 4 |] in
  let solve () =
    Robust.Inject.(with_stage Als_nan (fun () -> snd (Cp_als.decompose ~rank:2 t)))
  in
  let a = solve () and b = solve () in
  check_true "failure injected" (a.Cp_als.failure <> None);
  check_true "restart seeds deterministic"
    (List.map (fun r -> r.Cp_als.run_init) a.Cp_als.runs
    = List.map (fun r -> r.Cp_als.run_init) b.Cp_als.runs)

let test_cp_als_no_restart_on_plain_cap () =
  (* Exhausting max_iter without converging is not a failure — the historical
     contract (short-budget callers read the partial model) must hold. *)
  let r = rng () in
  let t = random_tensor r [| 5; 5; 5 |] in
  let options = { Cp_als.default_options with max_iter = 2; init = Cp_als.Random 3 } in
  let _, info = Cp_als.decompose ~options ~rank:3 t in
  check_true "no failure on cap" (info.Cp_als.failure = None);
  Alcotest.(check int) "no restarts" 1 (List.length info.Cp_als.runs)

(* ------------------------------------------------------------------ *)
(* End-to-end injection through the fit paths *)

let tcca_views r = random_views r ~dims:[| 5; 4; 6 |] ~n:40

let test_tcca_covariance_nan () =
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage Covariance_nan (fun () ->
      match Tcca.fit_checked ~r:2 views with
      | Error (Robust.Non_finite _) -> ()
      | Ok _ -> Alcotest.fail "poisoned covariance produced a model"
      | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)))

let test_tcca_view_column_zero_recovers () =
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage View_column_zero (fun () ->
      match Tcca.fit_checked ~r:2 views with
      | Ok t ->
        check_true "transform finite" (finite_mat (Tcca.transform t views));
        check_true "correlations finite" (Vec.all_finite (Tcca.correlations t))
      | Error e -> Alcotest.failf "dead column must recover: %s" (Robust.failure_to_string e)))

let test_tcca_sweep_cap () =
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage Sweep_cap (fun () ->
      match Tcca.fit_checked ~r:2 views with
      | Error (Robust.Not_converged _) -> ()
      | Ok _ -> Alcotest.fail "capped Jacobi produced a model"
      | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)))

let test_tcca_als_nan () =
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage Als_nan (fun () ->
      (match Tcca.fit_checked ~r:2 views with
      | Error (Robust.Non_finite { stage = "cp_als"; _ }) -> ()
      | Ok _ -> Alcotest.fail "NaN ALS produced a model"
      | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e));
      (* The legacy exception-style entry point raises the same failure. *)
      match Tcca.fit ~r:2 views with
      | _ -> Alcotest.fail "legacy fit must raise"
      | exception Robust.Error (Robust.Non_finite _) -> ()))

let test_tcca_constant_view_rank_deficient () =
  let r = rng () in
  let views = tcca_views r in
  views.(0) <- Mat.make 5 40 3.14;
  (* constant view: zero covariance *)
  match Tcca.fit_checked ~r:2 views with
  | Error (Robust.Rank_deficient { view = 0; rank = 0; dim = 5 }) -> ()
  | Ok _ -> Alcotest.fail "zero-information view produced a model"
  | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)

let test_tcca_nan_input () =
  let r = rng () in
  let views = tcca_views r in
  Mat.set views.(1) 2 7 nan;
  match Tcca.fit_checked ~r:2 views with
  | Error (Robust.Non_finite _) -> ()
  | Ok _ -> Alcotest.fail "NaN view produced a model"
  | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)

let test_tcca_both_paths_guarded () =
  (* The factored (materialize:false) path must take the same guardrails. *)
  let r = rng () in
  let views = tcca_views r in
  Robust.Inject.(with_stage Covariance_nan (fun () ->
      match Tcca.fit_checked ~materialize:false ~r:2 views with
      | Error (Robust.Non_finite _) -> ()
      | Ok _ -> Alcotest.fail "factored path missed the poisoned covariance"
      | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)))

let ktcca_kernels r n =
  Array.init 3 (fun _ ->
      let x = random_mat r 6 n in
      Mat.tgram x)

let test_ktcca_gram_indefinite () =
  let r = rng () in
  let kernels = ktcca_kernels r 25 in
  Robust.Inject.(with_stage Gram_indefinite (fun () ->
      match Ktcca.fit_checked ~r:2 kernels with
      | Error (Robust.Not_positive_definite { jitter_tried; _ }) ->
        check_true "jitter ladder was walked" (jitter_tried > 0.)
      | Ok _ -> Alcotest.fail "indefinite Gram produced a model"
      | Error e -> Alcotest.failf "wrong failure: %s" (Robust.failure_to_string e)))

let test_ktcca_healthy () =
  let r = rng () in
  let kernels = ktcca_kernels r 25 in
  match Ktcca.fit_checked ~r:2 kernels with
  | Ok t -> check_true "train embedding finite" (finite_mat (Ktcca.transform_train t))
  | Error e -> Alcotest.failf "healthy kernels failed: %s" (Robust.failure_to_string e)

(* ------------------------------------------------------------------ *)
(* Degenerate-input properties: recovered or structured, never silent NaN *)

let recovered_or_structured ~r views =
  match Tcca.fit_checked ~r views with
  | Ok t ->
    finite_mat (Tcca.transform t views) && Vec.all_finite (Tcca.correlations t)
  | Error _ -> true

let prop_rank_deficient_views =
  (* Fewer instances than dimensions AND a duplicated instance: the covariance
     is singular on every view. *)
  qtest ~count:30 "n < d + duplicated columns"
    QCheck2.Gen.(pair (int_range 3 6) (int_range 0 1000))
    (fun (d, seed) ->
      let r = Rng.create seed in
      let n = max 2 (d - 1) in
      let views = random_views r ~dims:[| d; d + 1 |] ~n in
      Array.iter (fun v -> Mat.set_col v (n - 1) (Mat.col v 0)) views;
      recovered_or_structured ~r:2 views)

let prop_indefinite_kernels =
  qtest ~count:30 "indefinite symmetric kernels"
    QCheck2.Gen.(pair (int_range 4 8) (int_range 0 1000))
    (fun (n, seed) ->
      let r = Rng.create seed in
      let kernels =
        Array.init 2 (fun _ ->
            let a = random_mat r n n in
            (* Symmetric but in general indefinite. *)
            Mat.scale 0.5 (Mat.add a (Mat.transpose a)))
      in
      match Ktcca.fit_checked ~r:1 kernels with
      | Ok t -> finite_mat (Ktcca.transform_train t)
      | Error _ -> true)

let prop_subnormal_tensors =
  qtest ~count:30 "subnormal-scale tensors" Test_support.gen_tensor3 (fun t ->
      let t = Tensor.scale 1e-310 t in
      let kruskal, info = Cp_als.decompose ~rank:2 t in
      match info.Cp_als.failure with
      | Some _ -> true
      | None ->
        Vec.all_finite kruskal.Kruskal.weights
        && Array.for_all Mat.all_finite kruskal.Kruskal.factors)

let prop_tiny_sample_fits =
  (* The paper's small-sample regime: N as low as 2. *)
  qtest ~count:30 "tiny-sample fits"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 1000))
    (fun (n, seed) ->
      let r = Rng.create seed in
      let views = random_views r ~dims:[| 4; 3; 5 |] ~n in
      recovered_or_structured ~r:2 views)

let () =
  Robust.Inject.reset ();
  Alcotest.run "robust"
    [ ( "inject",
        [ Alcotest.test_case "default off" `Quick test_inject_default_off;
          Alcotest.test_case "arm/disarm" `Quick test_inject_arm_disarm;
          Alcotest.test_case "with_stage restores" `Quick test_inject_with_stage_restores ] );
      ( "reporting",
        [ Alcotest.test_case "warning ring" `Quick test_warning_ring;
          Alcotest.test_case "ring domain-safe" `Quick test_warning_ring_domain_safe;
          Alcotest.test_case "drain reads and clears" `Quick test_drain_warnings;
          Alcotest.test_case "drains partition entries" `Quick test_drain_warnings_partitions;
          Alcotest.test_case "failure printing" `Quick test_failure_printing ] );
      ( "linalg",
        [ Alcotest.test_case "eigen info" `Quick test_eigen_info_converges;
          Alcotest.test_case "eigen nan" `Quick test_eigen_checked_nan;
          Alcotest.test_case "eigen sweep cap" `Quick test_eigen_sweep_cap_injection;
          Alcotest.test_case "eigen cap warns" `Quick test_eigen_cap_warns;
          Alcotest.test_case "svd info" `Quick test_svd_info_converges;
          Alcotest.test_case "svd inf" `Quick test_svd_checked_nan;
          Alcotest.test_case "cholesky jitter recovers" `Quick test_cholesky_jitter_recovers;
          Alcotest.test_case "cholesky jitter exhausted" `Quick test_cholesky_jitter_exhausted;
          Alcotest.test_case "whitener rank report" `Quick test_inv_sqrt_rank_report ] );
      ( "cp-als",
        [ Alcotest.test_case "healthy single run" `Quick test_cp_als_healthy_single_run;
          Alcotest.test_case "nan fit stops" `Quick test_cp_als_nan_fit_stops_immediately;
          Alcotest.test_case "deterministic restarts" `Quick test_cp_als_injection_deterministic;
          Alcotest.test_case "no restart on cap" `Quick test_cp_als_no_restart_on_plain_cap ] );
      ( "tcca-injection",
        [ Alcotest.test_case "covariance nan" `Quick test_tcca_covariance_nan;
          Alcotest.test_case "dead column recovers" `Quick test_tcca_view_column_zero_recovers;
          Alcotest.test_case "sweep cap" `Quick test_tcca_sweep_cap;
          Alcotest.test_case "als nan" `Quick test_tcca_als_nan;
          Alcotest.test_case "constant view" `Quick test_tcca_constant_view_rank_deficient;
          Alcotest.test_case "nan input" `Quick test_tcca_nan_input;
          Alcotest.test_case "factored path" `Quick test_tcca_both_paths_guarded ] );
      ( "ktcca-injection",
        [ Alcotest.test_case "gram indefinite" `Quick test_ktcca_gram_indefinite;
          Alcotest.test_case "healthy" `Quick test_ktcca_healthy ] );
      ( "properties",
        [ prop_rank_deficient_views;
          prop_indefinite_kernels;
          prop_subnormal_tensors;
          prop_tiny_sample_fits ] ) ]
