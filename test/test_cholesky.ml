open Test_support

let test_factor_known () =
  (* [[4,2],[2,5]] = G Gᵀ with G = [[2,0],[1,2]]. *)
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 5. |] |] in
  let g = Cholesky.lower (Cholesky.decompose a) in
  check_mat ~eps:1e-12 "lower factor" (Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 2. |] |]) g

let test_reconstruction () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = random_spd r 7 in
    let g = Cholesky.lower (Cholesky.decompose a) in
    check_mat ~eps:1e-8 "G·Gᵀ = A" a (Mat.mul_nt g g)
  done

let test_solve () =
  let r = rng () in
  let a = random_spd r 6 in
  let b = random_vec r 6 in
  let x = Cholesky.solve_vec (Cholesky.decompose a) b in
  check_vec ~eps:1e-8 "Ax = b" b (Mat.mul_vec a x)

let test_inverse () =
  let r = rng () in
  let a = random_spd r 5 in
  let inv = Cholesky.inverse (Cholesky.decompose a) in
  check_mat ~eps:1e-8 "A·A⁻¹" (Mat.identity 5) (Mat.mul a inv)

let test_not_pd () =
  (* Leading 1×1 minor is fine; the second pivot is 1 − 4 = −3. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  match Cholesky.decompose a with
  | _ -> Alcotest.fail "indefinite matrix factorized"
  | exception Cholesky.Not_positive_definite { pivot; value } ->
    Alcotest.(check int) "failing pivot" 1 pivot;
    check_float ~eps:1e-12 "pivot value" (-3.) value

let test_nan_pivot () =
  let a = Mat.of_arrays [| [| nan; 0. |]; [| 0.; 1. |] |] in
  match Cholesky.decompose a with
  | _ -> Alcotest.fail "NaN matrix factorized"
  | exception Cholesky.Not_positive_definite { pivot; value } ->
    Alcotest.(check int) "failing pivot" 0 pivot;
    check_true "pivot value is NaN" (Float.is_nan value)

let test_not_square () =
  Alcotest.check_raises "not square" (Invalid_argument "Cholesky.decompose: not square")
    (fun () -> ignore (Cholesky.decompose (Mat.create 2 3)))

let test_log_det () =
  let r = rng () in
  let a = random_spd r 5 in
  let expected = log (Lu.det (Lu.decompose a)) in
  check_float ~eps:1e-8 "log det matches LU" expected
    (Cholesky.log_det (Cholesky.decompose a))

let test_triangular_solves () =
  let r = rng () in
  let a = random_spd r 6 in
  let f = Cholesky.decompose a in
  let g = Cholesky.lower f in
  let b = random_vec r 6 in
  (* G y = b *)
  let y = Cholesky.solve_lower_vec f b in
  check_vec ~eps:1e-8 "forward solve" b (Mat.mul_vec g y);
  (* Gᵀ X = B *)
  let bm = random_mat r 6 2 in
  let x = Cholesky.solve_lower_transpose f bm in
  check_mat ~eps:1e-8 "transpose solve" bm (Mat.mul (Mat.transpose g) x)

let test_inverse_lower () =
  let r = rng () in
  let a = random_spd r 5 in
  let f = Cholesky.decompose a in
  let g = Cholesky.lower f and gi = Cholesky.inverse_lower f in
  check_mat ~eps:1e-8 "G·G⁻¹" (Mat.identity 5) (Mat.mul g gi)

let prop_solve_residual =
  qtest ~count:60 "SPD solve residual" gen_spd (fun a ->
      let n = fst (Mat.dims a) in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x = Cholesky.solve_vec (Cholesky.decompose a) b in
      Vec.norm (Vec.sub (Mat.mul_vec a x) b) < 1e-6 *. (1. +. Vec.norm b))

let prop_factor_lower_triangular =
  qtest ~count:60 "factor is lower triangular" gen_spd (fun a ->
      let g = Cholesky.lower (Cholesky.decompose a) in
      let n = fst (Mat.dims g) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Mat.get g i j <> 0. then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "cholesky"
    [ ( "factorization",
        [ Alcotest.test_case "known" `Quick test_factor_known;
          Alcotest.test_case "reconstruction" `Quick test_reconstruction;
          Alcotest.test_case "inverse lower" `Quick test_inverse_lower ] );
      ( "solve",
        [ Alcotest.test_case "vector" `Quick test_solve;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "triangular" `Quick test_triangular_solves;
          Alcotest.test_case "log det" `Quick test_log_det ] );
      ( "errors",
        [ Alcotest.test_case "not pd" `Quick test_not_pd;
          Alcotest.test_case "nan pivot" `Quick test_nan_pivot;
          Alcotest.test_case "not square" `Quick test_not_square ] );
      ("properties", [ prop_solve_residual; prop_factor_lower_triangular ]) ]
