(* The reactor suite: incremental frame decoding, request pipelining,
   cross-request GEMM micro-batching, and the slow-loris defence.

   Headline guarantees proven here:

   - the incremental decoder yields the same frames whatever the chunking
     (byte-by-byte, all-at-once, across frame boundaries), and refuses
     oversize declarations without allocating;
   - the buffered write path is grow-only: after warm-up, encoding a
     response allocates no fresh buffer storage (alloc-count regression);
   - N pipelined requests on one connection produce byte-identical
     responses, in request order, to the same N sent sequentially — for
     batch_max ∈ {1, 4, 32} and domain pools 1 and 4 (qcheck);
   - a client that stalls mid-frame is dropped after io_timeout_s while a
     sibling connection on the same reactor is served, promptly and
     bitwise-correct, throughout the stall;
   - concurrent same-model requests actually coalesce into stacked-column
     GEMM batches, and the batched responses are bitwise identical to the
     library's own per-request transforms. *)

let check_true msg condition = Alcotest.(check bool) msg true condition

let mat_equal_bits a b =
  fst (Mat.dims a) = fst (Mat.dims b)
  && snd (Mat.dims a) = snd (Mat.dims b)
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Mat.data b.Mat.data

let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let fit_model ?(rank = 2) ?(seed = 3) () =
  Tcca.fit ~r:rank (synth_views ~views:3 ~dim:6 ~n:40 ~seed)

let cfg ?(workers = 2) ?(queue = 64) ?(batch_max = 32) ?(batch_window_us = 0)
    ?(io_timeout = 30.) () =
  { Server.default_config with
    workers;
    queue_capacity = queue;
    batch_max;
    batch_window_us;
    io_timeout_s = io_timeout }

let with_server ?model c f =
  let t = Server.create ?model c in
  Fun.protect ~finally:(fun () -> Server.drain_and_stop t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Incremental decoder *)

let frame body =
  let b = Buffer.create 64 in
  Protocol.add_frame b body;
  Buffer.contents b

let feed_str d s off len = Protocol.decoder_feed d (Bytes.of_string s) off len

let test_decoder_chunking () =
  let bodies = [ "alpha"; ""; String.make 1000 'x'; "tail" ] in
  let stream = String.concat "" (List.map frame bodies) in
  (* Every chunk size from 1 (byte-by-byte) upward yields the same frames. *)
  List.iter
    (fun chunk ->
      let d = Protocol.decoder () in
      let got = ref [] in
      let rec drain () =
        match Protocol.decoder_next d with
        | `Frame f ->
          got := f :: !got;
          drain ()
        | `Await -> ()
        | `Oversize _ -> Alcotest.fail "spurious oversize"
      in
      let off = ref 0 in
      while !off < String.length stream do
        let len = min chunk (String.length stream - !off) in
        feed_str d stream !off len;
        drain ();
        off := !off + len
      done;
      check_true
        (Printf.sprintf "chunk %d reproduces all frames" chunk)
        (List.rev !got = bodies);
      check_true "decoder fully drained" (Protocol.decoder_buffered d = 0))
    [ 1; 3; 7; String.length stream ]

let test_decoder_oversize () =
  let d = Protocol.decoder () in
  let b = Buffer.create 8 in
  Buffer.add_int32_le b (Int32.of_int (Protocol.max_frame_bytes + 1));
  feed_str d (Buffer.contents b) 0 4;
  (match Protocol.decoder_next d with
  | `Oversize n -> check_true "declared length reported" (n = Protocol.max_frame_bytes + 1)
  | _ -> Alcotest.fail "oversize header must be refused");
  (* A half header is just `Await. *)
  let d2 = Protocol.decoder () in
  feed_str d2 "\x10\x00" 0 2;
  match Protocol.decoder_next d2 with
  | `Await -> ()
  | _ -> Alcotest.fail "half a header is not a frame"

(* ------------------------------------------------------------------ *)
(* Alloc regression: the write path reuses its buffers. *)

let test_buffered_encoding_alloc () =
  let resp = Protocol.R_ok { version = 3; note = "warm connection" } in
  let scratch = Buffer.create 256 in
  let out = Buffer.create 4096 in
  let encode () =
    Protocol.buffer_response ~scratch ~out resp;
    if Buffer.length out > 1 lsl 16 then Buffer.clear out
    (* like a flushed connection: clear keeps storage *)
  in
  for _ = 1 to 100 do encode () done;
  (* After warm-up both buffers have their steady-state capacity: the only
     per-response allocations left are the codec's boxed int64 temporaries,
     a handful of words.  Rebuilding a Buffer + string per frame (the old
     write path) costs well over 100 words per response — the threshold
     splits the two regimes with a wide margin. *)
  let n = 1000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do encode () done;
  let words_per_resp = (Gc.minor_words () -. before) /. float_of_int n in
  check_true
    (Printf.sprintf "%.1f minor words/response (limit 60)" words_per_resp)
    (words_per_resp < 60.)

(* ------------------------------------------------------------------ *)
(* Pipelining ≡ sequential, bitwise, in order (qcheck) *)

let pipeline_model = fit_model ~rank:2 ~seed:17 ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* Run [reqs] pipelined over one reactor connection; return response
   bodies in arrival order. *)
let run_pipelined t reqs =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Event_loop.serve_connection t server) () in
  let bodies =
    Fun.protect
      ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
      (fun () ->
        let b = Buffer.create 4096 in
        List.iter (Protocol.buffer_request b) reqs;
        write_all client (Buffer.contents b);
        List.map
          (fun _ ->
            match Protocol.read_frame ~timeout_s:30. client with
            | Protocol.Frame body -> body
            | _ -> Alcotest.fail "pipelined response missing")
          reqs)
  in
  Thread.join th;
  bodies

let qcheck_pipelined_equals_sequential =
  QCheck.Test.make ~count:6
    ~name:"pipelined ≡ sequential, bitwise in order (batch_max 1/4/32, pools 1/4)"
    QCheck.(pair (int_range 0 1000) (int_range 2 10))
    (fun (seed, nreqs) ->
      let m = pipeline_model in
      let reqs =
        List.init nreqs (fun i ->
            Protocol.Transform
              { deadline_ms = -1;
                views = synth_views ~views:3 ~dim:6 ~n:(1 + ((seed + i) mod 4))
                          ~seed:(seed + (7 * i));
                model_id = "default" })
      in
      let saved = Parallel.num_domains () in
      Fun.protect
        ~finally:(fun () -> Parallel.set_num_domains saved)
        (fun () ->
          List.for_all
            (fun pool ->
              Parallel.set_num_domains pool;
              List.for_all
                (fun batch_max ->
                  with_server ~model:m (cfg ~batch_max ()) (fun t ->
                      (* The reference: the same requests, one at a time,
                         through full dispatch. *)
                      let expected =
                        List.map
                          (fun r -> Protocol.response_to_string (Server.handle t r))
                          reqs
                      in
                      let got = run_pipelined t reqs in
                      List.equal String.equal expected got))
                [ 1; 4; 32 ])
            [ 1; 4 ]))

(* ------------------------------------------------------------------ *)
(* Slow-loris: a mid-frame staller is dropped; its sibling is served. *)

let test_slow_loris_sibling_unaffected () =
  let m = fit_model () in
  with_server ~model:m (cfg ~io_timeout:0.4 ()) (fun t ->
      let loris_c, loris_s = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let good_c, good_s = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let th =
        Thread.create (fun () -> Event_loop.serve_fds t [ loris_s; good_s ]) ()
      in
      (* The loris: half a frame header, then silence. *)
      write_all loris_c "\x10\x00";
      (* The sibling pipelines real work through the stall and must see
         every response, promptly and bitwise-correct. *)
      let reqs =
        List.init 8 (fun i ->
            Protocol.Transform
              { deadline_ms = -1;
                views = synth_views ~views:3 ~dim:6 ~n:(2 + (i mod 3)) ~seed:(50 + i);
                model_id = "default" })
      in
      let b = Buffer.create 4096 in
      List.iter (Protocol.buffer_request b) reqs;
      let t0 = Unix.gettimeofday () in
      write_all good_c (Buffer.contents b);
      List.iter
        (fun req ->
          match Protocol.read_frame ~timeout_s:5. good_c with
          | Protocol.Frame body -> (
            match (Protocol.response_of_string body, req) with
            | Ok (Protocol.R_matrix z), Protocol.Transform { views; _ } ->
              check_true "sibling served bitwise during stall"
                (mat_equal_bits z (Tcca.transform m views))
            | _ -> Alcotest.fail "sibling must get its matrix")
          | _ -> Alcotest.fail "sibling starved during slow-loris stall")
        reqs;
      let sibling_elapsed = Unix.gettimeofday () -. t0 in
      check_true "sibling latency unaffected by the stall (well under io_timeout)"
        (sibling_elapsed < 0.35);
      (* The staller is dropped once io_timeout_s passes mid-frame. *)
      (match Protocol.read_frame ~timeout_s:5. loris_c with
      | Protocol.Closed -> ()
      | _ -> Alcotest.fail "stalled connection must be dropped");
      (try Unix.close loris_c with Unix.Unix_error _ -> ());
      (try Unix.close good_c with Unix.Unix_error _ -> ());
      Thread.join th)

(* ------------------------------------------------------------------ *)
(* Micro-batching: concurrent requests actually coalesce, bitwise. *)

let test_batching_coalesces_bitwise () =
  let m = fit_model () in
  (* One worker + a 50 ms batching window: the worker pops the first job,
     lingers, and must sweep the stragglers into a single stacked GEMM. *)
  with_server ~model:m
    (cfg ~workers:1 ~batch_max:32 ~batch_window_us:50_000 ())
    (fun t ->
      let k = 8 in
      let inputs =
        Array.init k (fun i -> synth_views ~views:3 ~dim:6 ~n:(1 + (i mod 3)) ~seed:(90 + i))
      in
      let mu = Mutex.create () in
      let cond = Condition.create () in
      let got = Array.make k None in
      let remaining = ref k in
      Array.iteri
        (fun i views ->
          Server.submit t
            (Protocol.Transform { deadline_ms = -1; views; model_id = "default" })
            (fun resp ->
              Mutex.lock mu;
              got.(i) <- Some resp;
              decr remaining;
              Condition.signal cond;
              Mutex.unlock mu))
        inputs;
      Mutex.lock mu;
      while !remaining > 0 do
        Condition.wait cond mu
      done;
      Mutex.unlock mu;
      Array.iteri
        (fun i resp ->
          match resp with
          | Some (Protocol.R_matrix z) ->
            check_true "batched response ≡ library transform, bitwise"
              (mat_equal_bits z (Tcca.transform m inputs.(i)))
          | _ -> Alcotest.fail "batched request must be served")
        got;
      match Server.batch_stats t "default" with
      | Some (batches, jobs) ->
        check_true
          (Printf.sprintf "requests coalesced (batches %d, jobs %d)" batches jobs)
          (batches >= 1 && jobs >= 2)
      | None -> Alcotest.fail "default model must exist")

(* Drain hooks: request_drain must fire them (the reactor's wake path). *)
let test_drain_hook_fires () =
  with_server ~model:(fit_model ()) (cfg ()) (fun t ->
      let fired = Atomic.make 0 in
      let id = Atomic.make (-1) in
      Atomic.set id (Server.add_drain_hook t (fun () -> Atomic.incr fired));
      Server.request_drain t;
      check_true "hook fired on drain" (Atomic.get fired = 1);
      Server.remove_drain_hook t (Atomic.get id);
      Server.request_drain t;
      check_true "removed hook stays silent" (Atomic.get fired = 1))

let () =
  Alcotest.run "event_loop"
    [ ( "decoder",
        [ Alcotest.test_case "chunk-independent" `Quick test_decoder_chunking;
          Alcotest.test_case "oversize refused" `Quick test_decoder_oversize ] );
      ( "write-path",
        [ Alcotest.test_case "grow-only buffers" `Quick test_buffered_encoding_alloc ] );
      ( "pipelining",
        [ QCheck_alcotest.to_alcotest qcheck_pipelined_equals_sequential ] );
      ( "slow-loris",
        [ Alcotest.test_case "sibling unaffected" `Quick
            test_slow_loris_sibling_unaffected ] );
      ( "batching",
        [ Alcotest.test_case "coalesces bitwise" `Quick test_batching_coalesces_bitwise;
          Alcotest.test_case "drain hook fires" `Quick test_drain_hook_fires ] ) ]
