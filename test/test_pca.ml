open Test_support

(* Data stretched along the (1,1,0) direction. *)
let stretched r ~n =
  let x = Mat.create 3 n in
  for j = 0 to n - 1 do
    let t = 5. *. Rng.gaussian r in
    Mat.set x 0 j (t +. (0.1 *. Rng.gaussian r));
    Mat.set x 1 j (t +. (0.1 *. Rng.gaussian r));
    Mat.set x 2 j (0.1 *. Rng.gaussian r)
  done;
  x

let test_principal_direction () =
  let r = rng () in
  let x = stretched r ~n:3000 in
  let pca = Pca.fit ~r:1 x in
  let c = Mat.col (Pca.components pca) 0 in
  (* Dominant direction ≈ (1,1,0)/√2. *)
  check_float ~eps:0.1 "c0 ≈ c1" (Float.abs c.(0)) (Float.abs c.(1));
  check_true "c2 small" (Float.abs c.(2) < 0.1)

let test_orthonormal_components () =
  let r = rng () in
  let x = random_mat r 5 80 in
  let pca = Pca.fit ~r:4 x in
  check_mat ~eps:1e-8 "orthonormal" (Mat.identity 4) (Mat.tgram (Pca.components pca))

let test_variance_sorted () =
  let r = rng () in
  let x = random_mat r 6 100 in
  let v = Pca.explained_variance (Pca.fit ~r:6 x) in
  for i = 1 to 5 do
    check_true "descending" (v.(i) <= v.(i - 1) +. 1e-10)
  done

let test_transform_centers () =
  let r = rng () in
  let x = Mat.map (fun v -> v +. 10.) (random_mat r 4 60) in
  let pca = Pca.fit ~r:2 x in
  let z = Pca.transform pca x in
  Array.iter (fun m -> check_float ~eps:1e-8 "centered scores" 0. m) (Mat.row_means z)

let test_transform_variance_matches () =
  let r = rng () in
  let x = random_mat r 4 500 in
  let pca = Pca.fit ~r:2 x in
  let z = Pca.transform pca x in
  let v = Pca.explained_variance pca in
  for k = 0 to 1 do
    let row = Mat.row z k in
    let var = Vec.dot row row /. 500. in
    check_float ~eps:0.02 "score variance = eigenvalue" v.(k) var
  done

let test_r_clamped () =
  let r = rng () in
  let pca = Pca.fit ~r:10 (random_mat r 3 20) in
  Alcotest.(check (pair int int)) "at most d" (3, 3) (Mat.dims (Pca.components pca))

let test_reconstruction_quality () =
  (* Rank-3 data: 3 components reconstruct almost exactly. *)
  let r = rng () in
  let basis = random_mat r 6 3 in
  let coeffs = random_mat r 3 50 in
  let x = Mat.mul basis coeffs in
  let pca = Pca.fit ~r:3 x in
  let z = Pca.transform pca x in
  (* x̂ = V z + mean. *)
  let vz = Mat.mul (Pca.components pca) z in
  let reconstructed = Mat.sub_col_vec vz (Vec.scale (-1.) (Pca.mean pca)) in
  check_true "low rank recovered"
    (Mat.frobenius (Mat.sub x reconstructed) < 1e-6 *. (1. +. Mat.frobenius x))

(* --- Sketched route and shrinkage. --- *)

let test_randomized_matches_cov_eig () =
  let r = rng () in
  let x = stretched r ~n:400 in
  let classic = Pca.fit ~method_:`Cov_eig ~r:2 x in
  let sketched = Pca.fit ~method_:`Randomized ~r:2 x in
  let zc = Pca.transform classic x and zs = Pca.transform sketched x in
  for k = 0 to 1 do
    check_true
      (Printf.sprintf "score %d matches (up to sign)" k)
      (Float.abs (Stats.pearson (Mat.row zc k) (Mat.row zs k)) > 0.999)
  done;
  check_vec ~eps:1e-6 "same explained variance" (Pca.explained_variance classic)
    (Pca.explained_variance sketched)

let test_auto_small_d_is_classic () =
  (* d = 3 ≪ 512: `Auto must be bit-identical to the classical route. *)
  let r = rng () in
  let x = stretched r ~n:120 in
  let auto = Pca.fit ~method_:`Auto ~r:2 x in
  let classic = Pca.fit ~method_:`Cov_eig ~r:2 x in
  check_mat ~eps:0. "bitwise components" (Pca.components classic) (Pca.components auto);
  check_vec ~eps:0. "bitwise variances" (Pca.explained_variance classic)
    (Pca.explained_variance auto)

let test_shrinkage_keeps_components () =
  (* The scaled-identity target shares every eigenbasis, so shrinkage must
     leave the loadings untouched and only re-scale the spectrum. *)
  let r = rng () in
  let x = stretched r ~n:300 in
  let plain = Pca.fit ~r:3 x in
  let shrunk = Pca.fit ~shrinkage:(`Fixed 0.4) ~r:3 x in
  check_float "recorded ρ" 0.4 (Pca.shrinkage_intensity shrunk);
  check_float "plain ρ = 0" 0. (Pca.shrinkage_intensity plain);
  for k = 0 to 2 do
    let a = Mat.col (Pca.components plain) k and b = Mat.col (Pca.components shrunk) k in
    check_float ~eps:1e-8 (Printf.sprintf "loading %d unchanged" k) 1.
      (Float.abs (Vec.dot a b))
  done;
  let vp = Pca.explained_variance plain and vs = Pca.explained_variance shrunk in
  let mu = Array.fold_left ( +. ) 0. vp /. 3. in
  (* Careful: μ here is the mean over d = 3 kept = all eigenvalues. *)
  for k = 0 to 2 do
    check_float ~eps:1e-6
      (Printf.sprintf "λ%d shrunk toward μ" k)
      ((0.6 *. vp.(k)) +. (0.4 *. mu))
      vs.(k)
  done

let test_oas_shrinkage_estimated () =
  let r = rng () in
  let x = random_mat r 4 200 in
  let fitted = Pca.fit ~shrinkage:`Oas ~r:2 x in
  let rho = Pca.shrinkage_intensity fitted in
  check_true "estimated ρ ∈ (0,1]" (rho > 0. && rho <= 1.)

let () =
  Alcotest.run "pca"
    [ ( "fitting",
        [ Alcotest.test_case "principal direction" `Quick test_principal_direction;
          Alcotest.test_case "orthonormal" `Quick test_orthonormal_components;
          Alcotest.test_case "variance sorted" `Quick test_variance_sorted;
          Alcotest.test_case "r clamped" `Quick test_r_clamped ] );
      ( "transform",
        [ Alcotest.test_case "centers" `Quick test_transform_centers;
          Alcotest.test_case "variance" `Quick test_transform_variance_matches;
          Alcotest.test_case "reconstruction" `Quick test_reconstruction_quality ] );
      ( "sketched",
        [ Alcotest.test_case "randomized = cov_eig" `Quick test_randomized_matches_cov_eig;
          Alcotest.test_case "auto small-d bitwise" `Quick test_auto_small_d_is_classic;
          Alcotest.test_case "shrinkage keeps loadings" `Quick test_shrinkage_keeps_components;
          Alcotest.test_case "oas estimate" `Quick test_oas_shrinkage_estimated ] ) ]
