(* Unit tests for the bench-gate logic (Bench_compare_core): the ratio gate,
   and especially the new/missing/sub-floor interaction — the noise floor
   applies uniformly, so a sub-floor kernel never gates, whether it is
   common, new in the candidate, or missing from it. *)
open Test_support
open Bench_compare_core

let artifact entries =
  let rows =
    List.map
      (fun (name, ns, gf) ->
        match gf with
        | None -> Printf.sprintf "    {\"name\": %S, \"ns_per_run\": %.1f}" name ns
        | Some g ->
          Printf.sprintf "    {\"name\": %S, \"ns_per_run\": %.1f, \"gflops\": %.3f}" name ns g)
      entries
  in
  Printf.sprintf "{\"schema\": \"tcca-bench/2\",\n  \"results\": [\n%s\n  ]\n}"
    (String.concat ",\n" rows)

let parse_exn label s =
  match parse_string ~path:label s with
  | Ok entries -> entries
  | Error msg -> Alcotest.failf "parse %s: %s" label msg

let test_parse () =
  let entries =
    parse_exn "base" (artifact [ ("a", 2e6, Some 1.5); ("b", 3e3, None) ])
  in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let a = List.hd entries in
  Alcotest.(check string) "name" "a" a.e_name;
  check_float ~eps:1e-3 "ns" 2e6 a.e_ns;
  check_float ~eps:1e-6 "gflops" 1.5 a.e_gflops;
  check_true "missing gflops is NaN" (Float.is_nan (List.nth entries 1).e_gflops)

let test_bad_schema () =
  match parse_string ~path:"x" "{\"schema\": \"other/1\"}" with
  | Ok _ -> Alcotest.fail "expected schema error"
  | Error _ -> ()

let test_schema3_percentiles () =
  (* Schema /3: serve micros carry p50/p99; records without them parse with
     NaN percentiles, and the limit discipline keeps a later record's
     percentiles from bleeding into an earlier record missing them. *)
  let s =
    "{\"schema\": \"tcca-bench/3\",\n  \"results\": [\n\
     \    {\"name\": \"plain\", \"ns_per_run\": 5000.0, \"gflops\": null},\n\
     \    {\"name\": \"serve/transform-batch\", \"ns_per_run\": 250000.0, \
     \"gflops\": null, \"p50_ns\": 240000.0, \"p99_ns\": 910000.0}\n  ]\n}"
  in
  let entries = parse_exn "v3" s in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let plain = List.hd entries and serve = List.nth entries 1 in
  check_true "plain has no percentiles"
    (Float.is_nan plain.e_p50 && Float.is_nan plain.e_p99);
  check_float ~eps:1e-3 "p50" 240000.0 serve.e_p50;
  check_float ~eps:1e-3 "p99" 910000.0 serve.e_p99

let test_older_schemas_accepted () =
  (* /1 and /2 artifacts (no percentile fields anywhere) must keep parsing —
     the baseline may predate the serve micros. *)
  List.iter
    (fun v ->
      let s =
        Printf.sprintf
          "{\"schema\": \"tcca-bench/%d\", \"results\": [{\"name\": \"k\", \
           \"ns_per_run\": 1000.0}]}"
          v
      in
      match parse_exn "old" s with
      | [ e ] ->
        check_true "ns parsed" (e.e_ns = 1000.0);
        check_true "percentiles NaN" (Float.is_nan e.e_p50 && Float.is_nan e.e_p99)
      | es -> Alcotest.failf "schema /%d: expected 1 entry, got %d" v (List.length es))
    [ 1; 2 ]

let test_percentiles_flow_into_rows () =
  let base =
    "{\"schema\": \"tcca-bench/2\", \"results\": [{\"name\": \"serve/t\", \
     \"ns_per_run\": 200000.0}]}"
  in
  let cur =
    "{\"schema\": \"tcca-bench/3\", \"results\": [{\"name\": \"serve/t\", \
     \"ns_per_run\": 210000.0, \"p50_ns\": 205000.0, \"p99_ns\": 400000.0}]}"
  in
  let v = compare_runs ~min_ns:1e5 (parse_exn "b" base) (parse_exn "c" cur) in
  match v.rows with
  | [ r ] ->
    check_true "base percentiles NaN" (Float.is_nan r.r_base_p50);
    check_float ~eps:1e-3 "cur p50" 205000.0 r.r_cur_p50;
    check_float ~eps:1e-3 "cur p99" 400000.0 r.r_cur_p99;
    check_true "still gated on ns" r.r_gated
  | rs -> Alcotest.failf "expected 1 row, got %d" (List.length rs)

let run ~min_ns base cur =
  compare_runs ~min_ns
    (parse_exn "base" (artifact base))
    (parse_exn "cur" (artifact cur))

let test_ratio_gate () =
  let base = [ ("k", 1e6, None) ] and cur = [ ("k", 1.3e6, None) ] in
  let v = run ~min_ns:1e5 base cur in
  Alcotest.(check int) "compared" 1 v.compared;
  check_float ~eps:1e-6 "worst ratio" 1.3 (snd v.worst);
  check_true "1.15 gate fails" (gate_failures ~limit:1.15 v <> []);
  check_true "1.5 gate passes" (gate_failures ~limit:1.5 v = [])

let test_sub_floor_common_excluded () =
  (* A 40 ns micro that doubled: report-only, never gates. *)
  let v = run ~min_ns:1e5 [ ("tiny", 40., None) ] [ ("tiny", 80., None) ] in
  Alcotest.(check int) "nothing compared" 0 v.compared;
  Alcotest.(check int) "floored" 1 v.floored;
  check_true "gate passes" (gate_failures ~limit:1.15 v = [])

let test_fresh_above_floor_gates () =
  let v = run ~min_ns:1e5 [ ("k", 1e6, None) ] [ ("k", 1e6, None); ("new", 2e6, None) ] in
  Alcotest.(check (list string)) "fresh" [ "new" ] v.fresh;
  check_true "fresh kernel fails the gate" (gate_failures ~limit:1.15 v <> [])

let test_fresh_sub_floor_reports_only () =
  (* The uniform floor: a new sub-floor micro must NOT fail the gate. *)
  let v = run ~min_ns:1e5 [ ("k", 1e6, None) ] [ ("k", 1e6, None); ("probe", 50., None) ] in
  Alcotest.(check (list string)) "no gated fresh" [] v.fresh;
  Alcotest.(check (list string)) "floored fresh" [ "probe" ] v.fresh_floored;
  check_true "gate passes" (gate_failures ~limit:1.15 v = [])

let test_missing_above_floor_gates () =
  let v = run ~min_ns:1e5 [ ("k", 1e6, None); ("gone", 2e6, None) ] [ ("k", 1e6, None) ] in
  Alcotest.(check (list string)) "missing" [ "gone" ] v.missing;
  check_true "missing kernel fails the gate" (gate_failures ~limit:1.15 v <> [])

let test_missing_sub_floor_reports_only () =
  let v = run ~min_ns:1e5 [ ("k", 1e6, None); ("probe", 60., None) ] [ ("k", 1e6, None) ] in
  Alcotest.(check (list string)) "no gated missing" [] v.missing;
  Alcotest.(check (list string)) "floored missing" [ "probe" ] v.missing_floored;
  check_true "gate passes" (gate_failures ~limit:1.15 v = [])

let test_floor_zero_gates_everything () =
  (* --min-ns 0 restores the old behavior: even tiny kernels gate. *)
  let v =
    run ~min_ns:0. [ ("tiny", 40., None); ("gone", 10., None) ] [ ("tiny", 80., None) ]
  in
  Alcotest.(check int) "compared" 1 v.compared;
  Alcotest.(check (list string)) "missing gated" [ "gone" ] v.missing;
  check_true "ratio 2.0 fails" (gate_failures ~limit:1.15 v <> [])

let test_one_sided_floor () =
  (* A kernel that crossed the floor (base below, current above) gates: only
     kernels that are sub-floor on every side they exist on are exempt. *)
  let v = run ~min_ns:1e5 [ ("k", 5e4, None) ] [ ("k", 5e5, None) ] in
  Alcotest.(check int) "compared" 1 v.compared;
  check_true "10x over the floor fails" (gate_failures ~limit:1.15 v <> [])

let test_nan_base_not_compared () =
  (* "null" ns in the baseline (schema allows it) is not comparable. *)
  let base = "{\"schema\": \"tcca-bench/2\", \"results\": [{\"name\": \"k\", \"ns_per_run\": null}]}" in
  let v =
    compare_runs ~min_ns:1e5 (parse_exn "base" base)
      (parse_exn "cur" (artifact [ ("k", 1e6, None) ]))
  in
  Alcotest.(check int) "not compared" 0 v.compared;
  check_true "gate passes" (gate_failures ~limit:1.15 v = [])

let () =
  Alcotest.run "bench_compare"
    [ ( "parse",
        [ Alcotest.test_case "entries" `Quick test_parse;
          Alcotest.test_case "bad schema" `Quick test_bad_schema;
          Alcotest.test_case "schema /3 percentiles" `Quick test_schema3_percentiles;
          Alcotest.test_case "older schemas accepted" `Quick test_older_schemas_accepted;
          Alcotest.test_case "percentiles in rows" `Quick test_percentiles_flow_into_rows ] );
      ( "gate",
        [ Alcotest.test_case "ratio" `Quick test_ratio_gate;
          Alcotest.test_case "sub-floor common" `Quick test_sub_floor_common_excluded;
          Alcotest.test_case "fresh gated" `Quick test_fresh_above_floor_gates;
          Alcotest.test_case "fresh sub-floor" `Quick test_fresh_sub_floor_reports_only;
          Alcotest.test_case "missing gated" `Quick test_missing_above_floor_gates;
          Alcotest.test_case "missing sub-floor" `Quick test_missing_sub_floor_reports_only;
          Alcotest.test_case "floor zero" `Quick test_floor_zero_gates_everything;
          Alcotest.test_case "one-sided floor" `Quick test_one_sided_floor;
          Alcotest.test_case "null baseline" `Quick test_nan_base_not_compared ] ) ]
