open Test_support

let test_rank1_exact () =
  let r = rng () in
  let xs =
    [| Vec.normalize (random_vec r 4);
       Vec.normalize (random_vec r 5);
       Vec.normalize (random_vec r 3) |]
  in
  let t = Tensor.scale 4. (Tensor.outer xs) in
  let res = Hopm.rank1 t in
  check_true "converged" res.Hopm.converged;
  check_float ~eps:1e-8 "sigma" 4. (Float.abs res.Hopm.sigma);
  Array.iteri
    (fun p v ->
      check_true (Printf.sprintf "direction %d" p) (Float.abs (Vec.dot v xs.(p)) > 1. -. 1e-6))
    res.Hopm.vectors

let test_unit_vectors () =
  let r = rng () in
  let t = random_tensor r [| 4; 3; 5 |] in
  let res = Hopm.rank1 t in
  Array.iter (fun v -> check_float ~eps:1e-8 "unit" 1. (Vec.norm v)) res.Hopm.vectors

let test_sigma_is_multilinear_form () =
  let r = rng () in
  let t = random_tensor r [| 3; 4; 2 |] in
  let res = Hopm.rank1 t in
  check_float ~eps:1e-8 "sigma consistency" (Tensor.multilinear_form t res.Hopm.vectors)
    res.Hopm.sigma

let test_dominant_of_two () =
  (* Orthogonal rank-2: HOPM must pick the heavier term. *)
  let u = [| [| 1.; 0. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0.; 0. |] |] in
  let v = [| [| 0.; 1. |]; [| 0.; 1.; 0. |]; [| 0.; 1.; 0.; 0. |] |] in
  let t = Tensor.add (Tensor.scale 7. (Tensor.outer u)) (Tensor.scale 3. (Tensor.outer v)) in
  let res = Hopm.rank1 t in
  check_float ~eps:1e-6 "dominant weight" 7. (Float.abs res.Hopm.sigma)

let test_matrix_case_is_svd () =
  (* For an order-2 tensor HOPM computes the top singular triplet. *)
  let r = rng () in
  let m = random_mat r 5 4 in
  let t = Tensor.init [| 5; 4 |] (fun idx -> Mat.get m idx.(0) idx.(1)) in
  let res = Hopm.rank1 t in
  let svd = Svd.decompose m in
  check_float ~eps:1e-6 "sigma = sigma_1" svd.Svd.sigma.(0) (Float.abs res.Hopm.sigma)

let test_zero_tensor () =
  let t = Tensor.create [| 3; 3; 3 |] in
  let res = Hopm.rank1 t in
  check_float "zero sigma" 0. res.Hopm.sigma

let test_power_deflation_decomposes () =
  (* Orthogonal ground truth: greedy deflation recovers both weights. *)
  let u = [| [| 1.; 0. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0.; 0. |] |] in
  let v = [| [| 0.; 1. |]; [| 0.; 1.; 0. |]; [| 0.; 1.; 0.; 0. |] |] in
  let t = Tensor.add (Tensor.scale 7. (Tensor.outer u)) (Tensor.scale 3. (Tensor.outer v)) in
  let k, deadline = Tensor_power.decompose ~rank:2 t in
  check_true "no deadline" (deadline = None);
  let sorted = Array.copy k.Kruskal.weights in
  Array.sort (fun a b -> compare (Float.abs b) (Float.abs a)) sorted;
  check_float ~eps:1e-5 "first" 7. (Float.abs sorted.(0));
  check_float ~eps:1e-5 "second" 3. (Float.abs sorted.(1));
  check_float ~eps:1e-5 "full fit" 1. (Kruskal.fit k t)

let test_power_invalid_rank () =
  Alcotest.check_raises "rank 0" (Invalid_argument "Tensor_power.decompose: rank must be >= 1")
    (fun () -> ignore (Tensor_power.decompose ~rank:0 (Tensor.create [| 2; 2 |])))

let () =
  Alcotest.run "hopm"
    [ ( "rank-1",
        [ Alcotest.test_case "exact" `Quick test_rank1_exact;
          Alcotest.test_case "unit vectors" `Quick test_unit_vectors;
          Alcotest.test_case "sigma consistency" `Quick test_sigma_is_multilinear_form;
          Alcotest.test_case "dominant" `Quick test_dominant_of_two;
          Alcotest.test_case "matrix = svd" `Quick test_matrix_case_is_svd;
          Alcotest.test_case "zero tensor" `Quick test_zero_tensor ] );
      ( "deflation",
        [ Alcotest.test_case "decomposes" `Quick test_power_deflation_decomposes;
          Alcotest.test_case "invalid rank" `Quick test_power_invalid_rank ] ) ]
