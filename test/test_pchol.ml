open Test_support

let reconstruct f = Mat.mul_nt f f

let decompose_exn ?rank ?tol oracle =
  match Pchol.decompose ?rank ?tol oracle with
  | Ok (f, info) -> (f, info)
  | Error e -> Alcotest.failf "pchol failed: %s" (Robust.failure_to_string e)

let test_full_rank_reproduces () =
  let r = rng () in
  let a = random_spd r 10 in
  let f, info = decompose_exn ~tol:0. (Pchol.oracle_of_mat a) in
  check_mat ~eps:1e-6 "FFᵀ = A at full rank" a (reconstruct f);
  check_true "residual trace ~ 0" (info.Pchol.trace_residual < 1e-8 *. info.Pchol.trace_initial +. 1e-12)

let test_low_rank_stops_early () =
  (* A = BBᵀ with B n×3: the residual trace hits zero after ~3 pivots, so the
     default tol stops far below the cap. *)
  let r = rng () in
  let b = random_mat r 12 3 in
  let a = Mat.mul_nt b b in
  let f, info = decompose_exn (Pchol.oracle_of_mat a) in
  check_true "stopped near numerical rank" (info.Pchol.rank <= 5);
  check_mat ~eps:1e-6 "rank-3 kernel reproduced" a (reconstruct f);
  Alcotest.(check int) "factor columns = achieved rank" info.Pchol.rank (snd (Mat.dims f))

let test_rank_cap () =
  let r = rng () in
  let a = random_spd r 9 in
  let f, info = decompose_exn ~rank:2 ~tol:0. (Pchol.oracle_of_mat a) in
  Alcotest.(check int) "capped rank" 2 info.Pchol.rank;
  Alcotest.(check (pair int int)) "factor shape" (9, 2) (Mat.dims f);
  Alcotest.(check int) "two pivots" 2 (Array.length info.Pchol.pivots);
  check_true "residual left over" (info.Pchol.trace_residual > 0.);
  (* Partial F is still a valid PSD lower bound: tr(FFᵀ) ≤ tr(A). *)
  check_float ~eps:1e-6 "trace split"
    (Mat.trace a)
    (Mat.trace (reconstruct f) +. info.Pchol.trace_residual)

let test_greedy_pivot_order () =
  (* On a diagonal matrix the pivot order is the diagonal sort order, ties
     toward the lowest index. *)
  let a = Mat.diag_of_vec [| 1.; 5.; 3. |] in
  let _, info = decompose_exn ~tol:0. (Pchol.oracle_of_mat a) in
  Alcotest.(check (array int)) "pivot order" [| 1; 2; 0 |] info.Pchol.pivots

let test_monotone_residual () =
  (* Residual trace is non-increasing in the rank cap. *)
  let r = rng () in
  let a = random_spd r 8 in
  let residual cap =
    let _, info = decompose_exn ~rank:cap ~tol:0. (Pchol.oracle_of_mat a) in
    info.Pchol.trace_residual
  in
  let prev = ref infinity in
  for cap = 1 to 8 do
    let res = residual cap in
    check_true (Printf.sprintf "residual shrinks at cap %d" cap) (res <= !prev +. 1e-9);
    prev := res
  done

let test_kernel_oracle_matches_gram () =
  (* The Kernel column/diagonal oracle and the explicit Gram agree. *)
  let r = rng () in
  let x = Mat.map Float.abs (random_mat r 5 30) in
  let fit = Kernel.fit (Kernel.Rbf 0.7) x in
  let f, _ = decompose_exn ~tol:1e-10 (Kernel.oracle fit) in
  check_mat ~eps:1e-6 "FFᵀ = gram" (Kernel.gram fit) (reconstruct f)

let test_not_psd () =
  let a = Mat.diag_of_vec [| 1.; -2.; 3. |] in
  match Pchol.decompose (Pchol.oracle_of_mat a) with
  | Ok _ -> Alcotest.fail "expected Not_positive_definite"
  | Error (Robust.Not_positive_definite _) -> ()
  | Error e -> Alcotest.failf "unexpected failure: %s" (Robust.failure_to_string e)

let test_non_finite () =
  let a = Mat.init 3 3 (fun i j -> if i = 1 && j = 1 then nan else Float.of_int ((i * 3) + j)) in
  match Pchol.decompose (Pchol.oracle_of_mat a) with
  | Ok _ -> Alcotest.fail "expected Non_finite"
  | Error (Robust.Non_finite _) -> ()
  | Error e -> Alcotest.failf "unexpected failure: %s" (Robust.failure_to_string e)

let prop_full_rank_exact =
  qtest ~count:40 "pchol at ℓ=N reproduces the Gram" gen_spd (fun a ->
      match Pchol.decompose ~tol:0. (Pchol.oracle_of_mat a) with
      | Error _ -> false
      | Ok (f, _) ->
        let scale = 1. +. Mat.trace a in
        Mat.equal ~eps:(1e-8 *. scale) a (reconstruct f))

let prop_residual_bounds_error =
  qtest ~count:40 "‖A − FFᵀ‖₁ ≤ residual trace (PSD bound)" gen_spd (fun a ->
      let n = fst (Mat.dims a) in
      let cap = max 1 (n / 2) in
      match Pchol.decompose ~rank:cap ~tol:0. (Pchol.oracle_of_mat a) with
      | Error _ -> false
      | Ok (f, info) ->
        (* For PSD residual R: every diagonal entry of R is ≤ tr(R). *)
        let rec_f = reconstruct f in
        let ok = ref true in
        for i = 0 to n - 1 do
          let d = Mat.get a i i -. Mat.get rec_f i i in
          if d < -1e-8 *. (1. +. Mat.trace a) then ok := false;
          if d > info.Pchol.trace_residual +. 1e-8 *. (1. +. Mat.trace a) then ok := false
        done;
        !ok)

let () =
  Alcotest.run "pchol"
    [ ( "exact",
        [ Alcotest.test_case "full rank" `Quick test_full_rank_reproduces;
          Alcotest.test_case "low rank early stop" `Quick test_low_rank_stops_early;
          Alcotest.test_case "kernel oracle" `Quick test_kernel_oracle_matches_gram ] );
      ( "control",
        [ Alcotest.test_case "rank cap" `Quick test_rank_cap;
          Alcotest.test_case "greedy pivots" `Quick test_greedy_pivot_order;
          Alcotest.test_case "monotone residual" `Quick test_monotone_residual ] );
      ( "failures",
        [ Alcotest.test_case "not psd" `Quick test_not_psd;
          Alcotest.test_case "non finite" `Quick test_non_finite ] );
      ("properties", [ prop_full_rank_exact; prop_residual_bounds_error ]) ]
