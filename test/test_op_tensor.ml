open Test_support

(* Equivalence suite for the factored tensor operator: every Op_tensor
   primitive on a Factored operator must agree with the dense computation on
   its materialization, across random shapes, ranks and view counts.  This is
   the contract that lets Tcca/Ktcca swap representations freely. *)

(* (dims, n, rank, weight, seed) — matrices are derived deterministically
   from the seed so the generator stays a flat tuple. *)
let gen_shape =
  QCheck2.Gen.(
    int_range 2 4 >>= fun m ->
    list_repeat m (int_range 1 5) >>= fun dims ->
    int_range 1 6 >>= fun n ->
    int_range 1 3 >>= fun rank ->
    float_range (-1.5) 1.5 >>= fun weight ->
    int_bound 1_000_000 >|= fun seed ->
    (Array.of_list dims, n, rank, weight, seed))

let build (dims, n, rank, weight, seed) =
  let r = Rng.create seed in
  let fill rows cols = Mat.init rows cols (fun _ _ -> (2. *. Rng.uniform r) -. 1.) in
  let zs = Array.map (fun d -> fill d n) dims in
  let us = Array.map (fun d -> fill d rank) dims in
  let lambda = Array.init rank (fun _ -> (2. *. Rng.uniform r) -. 1.) in
  let op = Op_tensor.factored ~weight zs in
  (op, Op_tensor.to_tensor op, us, lambda)

let prop_mttkrp =
  qtest ~count:120 "factored mttkrp = dense mttkrp (all modes)" gen_shape (fun shape ->
      let op, x, us, _ = build shape in
      let ok = ref true in
      for k = 0 to Tensor.order x - 1 do
        if not (Mat.equal ~eps:1e-10 (Cp_als.mttkrp x us k) (Op_tensor.mttkrp op us k))
        then ok := false
      done;
      !ok)

let prop_norm2 =
  qtest ~count:120 "factored norm2 = ⟨X, X⟩" gen_shape (fun shape ->
      let op, x, _, _ = build shape in
      Float.abs (Op_tensor.norm2 op -. Tensor.inner x x)
      < 1e-10 *. (1. +. Tensor.inner x x))

let prop_inner_kruskal =
  qtest ~count:120 "inner_kruskal agrees dense/factored/explicit" gen_shape (fun shape ->
      let op, x, us, lambda = build shape in
      let explicit =
        Tensor.inner x (Kruskal.to_tensor { Kruskal.weights = lambda; factors = us })
      in
      let scale = 1. +. Float.abs explicit in
      Float.abs (Op_tensor.inner_kruskal op lambda us -. explicit) < 1e-10 *. scale
      && Float.abs (Op_tensor.inner_kruskal (Op_tensor.Dense x) lambda us -. explicit)
         < 1e-10 *. scale)

let prop_mode_gram =
  qtest ~count:120 "factored mode_gram = unfolding gram (all modes)" gen_shape
    (fun shape ->
      let op, x, _, _ = build shape in
      let ok = ref true in
      for k = 0 to Tensor.order x - 1 do
        if
          not
            (Mat.equal ~eps:1e-9
               (Mat.gram (Unfold.unfold x k))
               (Op_tensor.mode_gram op k))
        then ok := false
      done;
      !ok)

let prop_shape_accessors =
  qtest ~count:60 "dims/order/size agree with the materialization" gen_shape (fun shape ->
      let op, x, _, _ = build shape in
      Op_tensor.order op = Tensor.order x
      && Op_tensor.dims op = x.Tensor.dims
      && Op_tensor.size op = Tensor.size x
      && Op_tensor.n_components op <> None)

(* decompose_op on the factored operator must recover the same well-separated
   structure the dense solver recovers exactly. *)
let test_decompose_op_recovery () =
  let u2 = Mat.of_cols [| [| 0.; 1.; 0.; 0. |]; [| 0.; 0.; 1.; 0. |] |] in
  let u3 = Mat.of_cols [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  (* weight 1 with columns pre-scaled: z₁ carries the component scales 5, 2. *)
  let z1 = Mat.of_cols [| [| 5.; 0.; 0. |]; [| 0.; 2.; 0. |] |] in
  let op = Op_tensor.factored ~weight:1. [| z1; u2; u3 |] in
  let dense = Op_tensor.to_tensor op in
  let kf, inf_f = Cp_als.decompose_op ~rank:2 op in
  let kd, inf_d = Cp_als.decompose ~rank:2 dense in
  check_true "factored converged" inf_f.Cp_als.converged;
  check_true "dense converged" inf_d.Cp_als.converged;
  check_float ~eps:1e-6 "weight 5" 5. (Float.abs kf.Kruskal.weights.(0));
  check_float ~eps:1e-6 "weight 2" 2. (Float.abs kf.Kruskal.weights.(1));
  check_float ~eps:1e-8 "same fit both paths" inf_d.Cp_als.fit inf_f.Cp_als.fit;
  check_float ~eps:1e-6 "dense recovers weight 5" 5. (Float.abs kd.Kruskal.weights.(0))

let test_factored_validation () =
  Alcotest.check_raises "no modes" (Invalid_argument "Op_tensor.factored: no modes")
    (fun () -> ignore (Op_tensor.factored ~weight:1. [||]));
  Alcotest.check_raises "component mismatch"
    (Invalid_argument "Op_tensor.factored: component count mismatch") (fun () ->
      ignore (Op_tensor.factored ~weight:1. [| Mat.create 2 3; Mat.create 2 4 |]))

let test_mttkrp_arity () =
  let op = Op_tensor.factored ~weight:1. [| Mat.create 2 3; Mat.create 2 3 |] in
  Alcotest.check_raises "arity" (Invalid_argument "Op_tensor.mttkrp: arity mismatch")
    (fun () -> ignore (Op_tensor.mttkrp op [| Mat.create 2 1 |] 0))

(* Tcca end-to-end: the factored pipeline must match the dense pipeline on a
   dense-feasible shape (acceptance: projections within 1e-8). *)
let shared_views r ~n ~noise =
  let views = Array.init 3 (fun _ -> Mat.create 4 n) in
  for j = 0 to n - 1 do
    let s = -.log (Float.max 1e-12 (Rng.uniform r)) -. 1. in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (noise *. Rng.gaussian r));
        for i = 1 to 3 do
          Mat.set v i j (Rng.gaussian r)
        done)
      views
  done;
  views

let tight_als =
  (* Both paths are run to a tight fixed point so the comparison measures
     representation error, not early-stopping jitter. *)
  Tcca.Als { Cp_als.default_options with tol = 1e-13; max_iter = 400 }

let test_tcca_factored_matches_dense () =
  let r = rng () in
  let views = shared_views r ~n:500 ~noise:0.4 in
  let pd = Tcca.prepare ~eps:1e-2 ~materialize:true views in
  let pf = Tcca.prepare ~eps:1e-2 ~materialize:false views in
  check_true "dense path is dense" (Tcca.materialized pd);
  check_true "factored path is factored" (not (Tcca.materialized pf));
  let md = Tcca.fit_prepared ~solver:tight_als ~r:2 pd in
  let mf = Tcca.fit_prepared ~solver:tight_als ~r:2 pf in
  check_vec ~eps:1e-8 "correlations match" (Tcca.correlations md) (Tcca.correlations mf);
  let prd = Tcca.projections md and prf = Tcca.projections mf in
  Array.iteri
    (fun p ud ->
      for c = 0 to 1 do
        let cd = Mat.col ud c and cf = Mat.col prf.(p) c in
        let sign = if Vec.dot cd cf >= 0. then 1. else -1. in
        check_vec ~eps:1e-8
          (Printf.sprintf "projection view %d col %d" p c)
          cd (Vec.scale sign cf)
      done)
    prd;
  check_mat ~eps:1e-7 "embeddings match"
    (Mat.map Float.abs (Tcca.transform md views))
    (Mat.map Float.abs (Tcca.transform mf views))

let qsuite name tests = (name, tests)

let () =
  Alcotest.run "op_tensor"
    [ qsuite "equivalence"
        [ prop_mttkrp; prop_norm2; prop_inner_kruskal; prop_mode_gram;
          prop_shape_accessors ];
      qsuite "decompose"
        [ Alcotest.test_case "factored recovery = dense" `Quick test_decompose_op_recovery ];
      qsuite "tcca"
        [ Alcotest.test_case "fit factored = fit dense" `Quick
            test_tcca_factored_matches_dense ];
      qsuite "errors"
        [ Alcotest.test_case "validation" `Quick test_factored_validation;
          Alcotest.test_case "mttkrp arity" `Quick test_mttkrp_arity ] ]
