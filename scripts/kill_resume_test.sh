#!/usr/bin/env bash
# Crash-safety end-to-end checks.
#
# Solver mode (default): SIGKILL a checkpointed TCCA fit mid-solve, resume
# from the surviving snapshot, and assert the resumed model is byte-identical
# to an uninterrupted run of the same fit.
#
#   scripts/kill_resume_test.sh [path/to/tcca_experiments.exe]
#
# Daemon mode (--daemon): run TWO models ("a" and "b") in one daemon, SIGKILL
# the daemon mid-refit of "a", and assert the failure domain held: "b" served
# byte-identical projections while a's refit was in flight, and after a
# restart on the same state root BOTH models recover their pre-kill versions
# and serve byte-identically.  Then drain with SIGTERM and expect a clean
# exit.
#
#   scripts/kill_resume_test.sh --daemon [path/to/tccad.exe]
#
# Exit 0 on success, 1 on any failure (including "fit/refit finished before
# we managed to kill it", which means the workload below needs to be bigger).

set -u

MODE=solver
if [ "${1:-}" = "--daemon" ]; then
  MODE=daemon
  shift
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# ---------------------------------------------------------------------------
if [ "$MODE" = daemon ]; then
  EXE="${1:-_build/default/bin/tccad.exe}"
  if [ ! -x "$EXE" ]; then
    echo "kill_resume_test: $EXE not found or not executable (dune build first?)" >&2
    exit 1
  fi

  SOCK="unix:$WORK/daemon.sock"
  STATE="$WORK/state"
  # Huge sweep budget + tol 0: a refit left to its own devices runs for
  # minutes, so a kill 2s in is guaranteed to land mid-solve.  The first
  # refit is bounded by a client-side deadline instead — the daemon installs
  # its best-so-far model at expiry (graceful degradation, not an error).
  SERVE_ARGS=(serve --listen "$SOCK" --state-dir "$STATE" --workers 2
              --refit-iters 1000000 --refit-tol 0 --rank 4)

  client() { "$EXE" "$@" --connect "$SOCK"; }

  start_daemon() {
    # A SIGKILLed daemon leaves its socket file behind; remove it so the
    # readiness probe below can only ever see the *new* daemon's socket.
    rm -f "$WORK/daemon.sock"
    "$EXE" "${SERVE_ARGS[@]}" >>"$WORK/daemon.log" 2>&1 &
    DPID=$!
    for _ in $(seq 1 200); do
      if [ -S "$WORK/daemon.sock" ] && client health >/dev/null 2>&1; then
        return 0
      fi
      kill -0 "$DPID" 2>/dev/null || break
      sleep 0.05
    done
    echo "kill_resume_test: daemon did not come up (see $WORK/daemon.log)" >&2
    cat "$WORK/daemon.log" >&2
    return 1
  }

  # model-health prints one line starting "model <id>  version <v>  ...".
  assert_version() { # id expected label
    local line
    line="$(client model-health --model "$1")" || {
      echo "kill_resume_test: model-health $1 failed ($3)" >&2; exit 1; }
    case "$line" in
      "model $1  version $2  "*) ;;
      *) echo "kill_resume_test: FAIL — $3: expected $1 at version $2, got: $line" >&2
         exit 1 ;;
    esac
  }

  echo "kill_resume_test[daemon]: start + ingest + bounded refit -> a@v1, b@v1"
  start_daemon || exit 1
  client ingest --model a --seed 1 -n 300 --views 3 --dim 24 >/dev/null || {
    echo "kill_resume_test: ingest a failed" >&2; exit 1; }
  client refit --model a --deadline-ms 3000 >/dev/null || {
    echo "kill_resume_test: first refit of a failed" >&2; exit 1; }
  client ingest --model b --seed 3 -n 300 --views 3 --dim 24 >/dev/null || {
    echo "kill_resume_test: ingest b failed" >&2; exit 1; }
  client refit --model b --deadline-ms 3000 >/dev/null || {
    echo "kill_resume_test: first refit of b failed" >&2; exit 1; }
  assert_version a 1 "after first refits"
  assert_version b 1 "after first refits"

  client transform --model a --seed 7 -n 16 >"$WORK/pre_a.txt" || {
    echo "kill_resume_test: pre-kill transform of a failed" >&2; exit 1; }
  client transform --model b --seed 7 -n 16 >"$WORK/pre_b.txt" || {
    echo "kill_resume_test: pre-kill transform of b failed" >&2; exit 1; }

  echo "kill_resume_test[daemon]: long refit of a in flight; b must serve through it"
  client ingest --model a --seed 2 -n 300 >/dev/null || exit 1
  client refit --model a --deadline-ms 600000 >"$WORK/refit2.log" 2>&1 &
  REFIT_PID=$!
  sleep 1
  # Fault isolation, live: while a's refit grinds, b answers byte-identically.
  client transform --model b --seed 7 -n 16 >"$WORK/mid_b.txt" || {
    echo "kill_resume_test: FAIL — b did not serve during a's refit" >&2; exit 1; }
  if ! cmp -s "$WORK/pre_b.txt" "$WORK/mid_b.txt"; then
    echo "kill_resume_test: FAIL — b's projections drifted during a's refit" >&2
    exit 1
  fi
  assert_version b 1 "during a's refit"

  echo "kill_resume_test[daemon]: SIGKILL the daemon mid-refit"
  sleep 1
  kill -9 "$DPID" 2>/dev/null
  wait "$DPID" 2>/dev/null
  wait "$REFIT_PID" 2>/dev/null

  for id in a b; do
    if ! ls "$STATE/$id"/model-v*.tccm >/dev/null 2>&1; then
      echo "kill_resume_test: no snapshot of model $id survived the kill" >&2
      exit 1
    fi
  done

  echo "kill_resume_test[daemon]: restart on the same state root"
  start_daemon || exit 1
  assert_version a 1 "after restart (a's interrupted refit must not have installed)"
  assert_version b 1 "after restart"
  client health >/dev/null || {
    echo "kill_resume_test: FAIL — health reports an open breaker after recovery" >&2
    exit 1; }

  for id in a b; do
    client transform --model "$id" --seed 7 -n 16 >"$WORK/post_$id.txt" || {
      echo "kill_resume_test: post-restart transform of $id failed" >&2; exit 1; }
    if ! cmp -s "$WORK/pre_$id.txt" "$WORK/post_$id.txt"; then
      echo "kill_resume_test: FAIL — recovered model $id's projections differ" >&2
      diff "$WORK/pre_$id.txt" "$WORK/post_$id.txt" | head -20 >&2
      exit 1
    fi
  done

  echo "kill_resume_test[daemon]: SIGTERM drain"
  kill -TERM "$DPID" 2>/dev/null
  for _ in $(seq 1 200); do
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.05
  done
  if kill -0 "$DPID" 2>/dev/null; then
    echo "kill_resume_test: FAIL — daemon did not drain within 10s of SIGTERM" >&2
    kill -9 "$DPID" 2>/dev/null
    exit 1
  fi
  wait "$DPID" 2>/dev/null

  echo "kill_resume_test[daemon]: OK — both models served byte-identically after SIGKILL + restart; b never flinched during a's refit"
  exit 0
fi

# ---------------------------------------------------------------------------
EXE="${1:-_build/default/bin/tcca_experiments.exe}"
if [ ! -x "$EXE" ]; then
  echo "kill_resume_test: $EXE not found or not executable (dune build first?)" >&2
  exit 1
fi

# Rank matches the synthetic latent rank so the ALS trajectory is benign and
# the run spends its full --iters budget (tol 0 never converges early).
FIT_ARGS=(fit --views 3 --dim 24 -n 300 --rank 4 --iters 2000 --tol 0 --seed 42)

echo "kill_resume_test: reference (uninterrupted) run"
"$EXE" "${FIT_ARGS[@]}" --out "$WORK/reference.txt" >/dev/null || {
  echo "kill_resume_test: reference run failed" >&2
  exit 1
}

echo "kill_resume_test: victim run (checkpoint every sweep, SIGKILL mid-fit)"
"$EXE" "${FIT_ARGS[@]}" --checkpoint-dir "$WORK/ck" --checkpoint-every 1 \
  --out "$WORK/victim.txt" >/dev/null 2>&1 &
PID=$!

# Kill as soon as a snapshot has landed (first sweep), so the fit is still
# thousands of sweeps from finishing even on a fast machine.
for _ in $(seq 1 600); do
  [ -s "$WORK/ck/fit.ckpt" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

if [ -f "$WORK/victim.txt" ]; then
  echo "kill_resume_test: fit finished before the kill — enlarge the workload" >&2
  exit 1
fi
if [ ! -s "$WORK/ck/fit.ckpt" ]; then
  echo "kill_resume_test: no checkpoint written before the victim died" >&2
  exit 1
fi

echo "kill_resume_test: resuming from $WORK/ck/fit.ckpt"
"$EXE" "${FIT_ARGS[@]}" --checkpoint-dir "$WORK/ck" --checkpoint-every 1 \
  --resume --out "$WORK/resumed.txt" >/dev/null || {
  echo "kill_resume_test: resumed run failed" >&2
  exit 1
}

if cmp -s "$WORK/reference.txt" "$WORK/resumed.txt"; then
  echo "kill_resume_test: OK — resumed model byte-identical to uninterrupted run"
else
  echo "kill_resume_test: FAIL — resumed model differs from uninterrupted run" >&2
  diff "$WORK/reference.txt" "$WORK/resumed.txt" | head -20 >&2
  exit 1
fi
