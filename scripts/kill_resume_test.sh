#!/usr/bin/env bash
# Crash-safety end-to-end check: SIGKILL a checkpointed TCCA fit mid-solve,
# resume from the surviving snapshot, and assert the resumed model is
# byte-identical to an uninterrupted run of the same fit.
#
# Usage: scripts/kill_resume_test.sh [path/to/tcca_experiments.exe]
#
# Exit 0 on success, 1 on any failure (including "fit finished before we
# managed to kill it", which means the workload below needs to be bigger).

set -u

EXE="${1:-_build/default/bin/tcca_experiments.exe}"
if [ ! -x "$EXE" ]; then
  echo "kill_resume_test: $EXE not found or not executable (dune build first?)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Rank matches the synthetic latent rank so the ALS trajectory is benign and
# the run spends its full --iters budget (tol 0 never converges early).
FIT_ARGS=(fit --views 3 --dim 24 -n 300 --rank 4 --iters 2000 --tol 0 --seed 42)

echo "kill_resume_test: reference (uninterrupted) run"
"$EXE" "${FIT_ARGS[@]}" --out "$WORK/reference.txt" >/dev/null || {
  echo "kill_resume_test: reference run failed" >&2
  exit 1
}

echo "kill_resume_test: victim run (checkpoint every sweep, SIGKILL mid-fit)"
"$EXE" "${FIT_ARGS[@]}" --checkpoint-dir "$WORK/ck" --checkpoint-every 1 \
  --out "$WORK/victim.txt" >/dev/null 2>&1 &
PID=$!

# Kill as soon as a snapshot has landed (first sweep), so the fit is still
# thousands of sweeps from finishing even on a fast machine.
for _ in $(seq 1 600); do
  [ -s "$WORK/ck/fit.ckpt" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

if [ -f "$WORK/victim.txt" ]; then
  echo "kill_resume_test: fit finished before the kill — enlarge the workload" >&2
  exit 1
fi
if [ ! -s "$WORK/ck/fit.ckpt" ]; then
  echo "kill_resume_test: no checkpoint written before the victim died" >&2
  exit 1
fi

echo "kill_resume_test: resuming from $WORK/ck/fit.ckpt"
"$EXE" "${FIT_ARGS[@]}" --checkpoint-dir "$WORK/ck" --checkpoint-every 1 \
  --resume --out "$WORK/resumed.txt" >/dev/null || {
  echo "kill_resume_test: resumed run failed" >&2
  exit 1
}

if cmp -s "$WORK/reference.txt" "$WORK/resumed.txt"; then
  echo "kill_resume_test: OK — resumed model byte-identical to uninterrupted run"
else
  echo "kill_resume_test: FAIL — resumed model differs from uninterrupted run" >&2
  diff "$WORK/reference.txt" "$WORK/resumed.txt" | head -20 >&2
  exit 1
fi
