#!/usr/bin/env bash
# Serving soak: the event-loop reactor under real sockets, end to end.
#
#   scripts/serve_soak.sh [path/to/tccad.exe]
#
# Starts the daemon with micro-batching on and a short --io-timeout, then
# drives it with the built-in pipelined load generator:
#
#   1. 32 connections x 64 pipelined transforms, every response verified
#      byte-identical to a sequential reference, in request order — the
#      pipelining + coalescing contract under a real TCP-ish (unix socket)
#      stack, not the in-process harness.
#   2. The same load again with 8 slow-loris connections alongside (half a
#      frame header, then silence): the loaded traffic must stay
#      byte-perfect AND the daemon must drop every staller within the
#      io-timeout window.
#   3. SIGTERM: the daemon must exit 0 promptly (the drain hook wakes the
#      reactor via its self-pipe; no poll-tick latency, no hang).
#
# Exit 0 on success, 1 on any failure.

set -u

EXE="${1:-_build/default/bin/tccad.exe}"
if [ ! -x "$EXE" ]; then
  echo "serve_soak: $EXE not found or not executable (dune build first?)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="unix:$WORK/daemon.sock"

fail() { echo "serve_soak: FAIL — $1" >&2; cat "$WORK/daemon.log" >&2; exit 1; }

# Short io-timeout so the slow-loris verdict lands inside the stall-wait
# window; batching on at its default width.  The queue must hold the whole
# pipelined burst (32 x 64 = 2048 in-flight): at the default capacity of
# 64 the daemon answers the overflow with typed R_shed replies — correct
# load-shedding behaviour, but this soak asserts the shed-free contract.
"$EXE" serve --listen "$SOCK" --state-dir "$WORK/state" --workers 2 \
  --queue 4096 --io-timeout 2 --batch-max 32 >"$WORK/daemon.log" 2>&1 &
DPID=$!

for _ in $(seq 1 200); do
  if [ -S "$WORK/daemon.sock" ] && "$EXE" health --connect "$SOCK" >/dev/null 2>&1; then
    break
  fi
  kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.05
done
[ -S "$WORK/daemon.sock" ] || fail "daemon did not come up"

echo "serve_soak: ingest + refit -> default@v1"
"$EXE" ingest --connect "$SOCK" --seed 1 -n 300 --views 3 --dim 24 >/dev/null \
  || fail "ingest failed"
"$EXE" refit --connect "$SOCK" --deadline-ms 5000 >/dev/null \
  || fail "first refit failed"

echo "serve_soak: pipelined soak (32 connections x 64 requests)"
"$EXE" load --connect "$SOCK" --connections 32 --per-conn 64 \
  || fail "pipelined soak diverged from sequential reference"

echo "serve_soak: slow-loris (8 stalled connections under load)"
"$EXE" load --connect "$SOCK" --connections 32 --per-conn 64 \
  --stall-connections 8 --stall-wait 10 \
  || fail "slow-loris run failed (divergence or stallers not dropped)"

echo "serve_soak: SIGTERM drain"
kill -TERM "$DPID"
for _ in $(seq 1 100); do
  kill -0 "$DPID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$DPID" 2>/dev/null; then
  fail "daemon still alive 10s after SIGTERM"
fi
wait "$DPID"
STATUS=$?
DPID=""
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM (want 0)"

echo "serve_soak: PASS"
