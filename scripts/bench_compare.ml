(* Compare two bench JSON artifacts (schema tcca-bench/1, /2 or /3, as
   written by bench/main.exe --json) and print per-kernel time ratios, plus
   achieved GFLOP/s where the artifact carries it (schema /2) and p50/p99
   request latency for the serve micros (schema /3).

   Usage:
     dune exec scripts/bench_compare.exe -- BASELINE.json CURRENT.json
                                            [--fail-above RATIO] [--min-ns NS]

   Report-only by default (always exits 0).  [--fail-above R] (or the
   TCCA_BENCH_FAIL_ABOVE environment variable; the flag wins when both are
   set) turns it into a gate: exit 1 if any kernel got slower than R× its
   baseline, or if any kernel exists on only one side — new-in-candidate
   entries would otherwise ship ungated and baseline-only entries would hide
   a regression by deletion; refresh BENCH_baseline.json to clear either.
   CI runs the gate at 1.15.

   [--min-ns NS] (default 1e5) is a noise floor: kernels that run under NS
   nanoseconds are printed but excluded from the gate — a sub-100µs micro
   (a flag probe, a tiny load) jitters by whole multiples on shared runners,
   and a 1.15× gate on a 40 ns measurement is a coin flip, not a regression
   check.  The floor applies uniformly, including to new and missing
   kernels: a new sub-floor micro is report-only rather than an instant
   gate failure.  Set --min-ns 0 to gate everything.

   Escape hatch for known-noisy or intentionally-slower changes: set
   TCCA_BENCH_NO_GATE to any non-empty value other than "0" (the CI
   workflow sets it when the PR carries the `bench-no-gate` label) and the
   comparison reverts to report-only.

   The parsing and gating logic lives in Bench_compare_core so the
   new/missing/sub-floor interaction is unit-tested. *)

open Bench_compare_core

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> die "bench_compare: %s" e

let parse path =
  match parse_string ~path (read_file path) with
  | Ok entries -> entries
  | Error msg -> die "%s" msg

let pretty ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* "base -> cur GF/s" when either side carries a number; "" otherwise, so
   schema /1 inputs render exactly as before. *)
let pretty_gflops base_gf cur_gf =
  let one v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
  if Float.is_nan base_gf && Float.is_nan cur_gf then ""
  else Printf.sprintf "  %s -> %s GF/s" (one base_gf) (one cur_gf)

(* "p50 a -> b, p99 c -> d" for serve micros (schema /3); "" when neither
   side carries percentiles, so older artifacts render exactly as before. *)
let pretty_latency r =
  let open Bench_compare_core in
  let any =
    List.exists
      (fun v -> not (Float.is_nan v))
      [ r.r_base_p50; r.r_cur_p50; r.r_base_p99; r.r_cur_p99 ]
  in
  if not any then ""
  else
    let one v = if Float.is_nan v then "-" else pretty v in
    Printf.sprintf "  p50 %s -> %s, p99 %s -> %s" (one r.r_base_p50) (one r.r_cur_p50)
      (one r.r_base_p99) (one r.r_cur_p99)

let () =
  let usage () =
    die "usage: bench_compare BASELINE.json CURRENT.json [--fail-above RATIO] [--min-ns NS]"
  in
  let rec parse_args base cur fail min_ns = function
    | [] -> (base, cur, fail, min_ns)
    | "--fail-above" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f when f > 0. -> parse_args base cur (Some f) min_ns rest
      | _ -> usage ())
    | "--fail-above" :: [] -> usage ()
    | "--min-ns" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f when f >= 0. -> parse_args base cur fail f rest
      | _ -> usage ())
    | "--min-ns" :: [] -> usage ()
    | a :: rest when base = None -> parse_args (Some a) cur fail min_ns rest
    | a :: rest when cur = None -> parse_args base (Some a) fail min_ns rest
    | _ -> usage ()
  in
  let base_path, cur_path, fail_above, min_ns =
    match parse_args None None None 1e5 (List.tl (Array.to_list Sys.argv)) with
    | Some b, Some c, f, m -> (b, c, f, m)
    | _ -> usage ()
  in
  let fail_above =
    match fail_above with
    | Some _ as f -> f
    | None -> (
      match Sys.getenv_opt "TCCA_BENCH_FAIL_ABOVE" with
      | None -> None
      | Some r -> (
        match float_of_string_opt r with
        | Some f when f > 0. -> Some f
        | _ -> die "bench_compare: bad TCCA_BENCH_FAIL_ABOVE %S" r))
  in
  let fail_above =
    match Sys.getenv_opt "TCCA_BENCH_NO_GATE" with
    | Some v when v <> "" && v <> "0" ->
      if fail_above <> None then
        print_endline "bench_compare: TCCA_BENCH_NO_GATE set — gate disabled, report only";
      None
    | _ -> fail_above
  in
  let base = parse base_path and cur = parse cur_path in
  let v = compare_runs ~min_ns base cur in
  Printf.printf "bench_compare: %s (baseline) vs %s\n" base_path cur_path;
  Printf.printf "%-32s %12s %12s %8s\n" "kernel" "baseline" "current" "ratio";
  List.iter
    (fun r ->
      if Float.is_nan r.r_base_ns && not (Float.is_nan r.r_cur_ns) then
        Printf.printf "%-32s %12s %12s %8s%s%s%s\n" r.r_name "-" (pretty r.r_cur_ns) "new"
          (if r.r_gated then "" else "  (sub-floor, report-only)")
          (pretty_gflops nan r.r_cur_gf) (pretty_latency r)
      else if Float.is_nan r.r_cur_ns && not (Float.is_nan r.r_base_ns) then
        Printf.printf "%-32s %12s %12s %8s%s%s\n" r.r_name (pretty r.r_base_ns) "-" "gone"
          (if r.r_gated then "" else "  (sub-floor, report-only)")
          (pretty_latency r)
      else if Float.is_nan r.r_ratio then
        Printf.printf "%-32s %12s %12s %8s%s%s\n" r.r_name (pretty r.r_base_ns)
          (pretty r.r_cur_ns) "n/a"
          (pretty_gflops r.r_base_gf r.r_cur_gf)
          (pretty_latency r)
      else
        Printf.printf "%-32s %12s %12s %7.2fx%s%s%s\n" r.r_name (pretty r.r_base_ns)
          (pretty r.r_cur_ns) r.r_ratio
          (if not r.r_gated then "  (sub-floor, report-only)"
           else if r.r_ratio > 1.5 then "  <-- slower"
           else "")
          (pretty_gflops r.r_base_gf r.r_cur_gf)
          (pretty_latency r))
    v.rows;
  if v.compared = 0 then print_endline "bench_compare: no common kernels to compare"
  else
    Printf.printf
      "bench_compare: %d kernels compared (%d new, %d missing, %d below the %s noise \
       floor), worst ratio %.2fx (%s)\n"
      v.compared
      (List.length v.fresh + List.length v.fresh_floored)
      (List.length v.missing + List.length v.missing_floored)
      (v.floored + List.length v.fresh_floored + List.length v.missing_floored)
      (pretty min_ns) (snd v.worst) (fst v.worst);
  match fail_above with
  | Some limit -> (
    match gate_failures ~limit v with
    | [] -> ()
    | fails ->
      List.iter (fun msg -> Printf.printf "bench_compare: FAIL — %s\n" msg) fails;
      exit 1)
  | None -> ()
