(* Compare two bench JSON artifacts (schema tcca-bench/1 or /2, as written
   by bench/main.exe --json) and print per-kernel time ratios, plus achieved
   GFLOP/s where the artifact carries it (schema /2).

   Usage:
     dune exec scripts/bench_compare.exe -- BASELINE.json CURRENT.json
                                            [--fail-above RATIO] [--min-ns NS]

   Report-only by default (always exits 0).  [--fail-above R] (or the
   TCCA_BENCH_FAIL_ABOVE environment variable; the flag wins when both are
   set) turns it into a gate: exit 1 if any kernel got slower than R× its
   baseline, or if any kernel exists on only one side — new-in-candidate
   entries would otherwise ship ungated and baseline-only entries would hide
   a regression by deletion; refresh BENCH_baseline.json to clear either.
   CI runs the gate at 1.15.

   [--min-ns NS] (default 1e5) is a noise floor: kernels where both sides
   run under NS nanoseconds are printed but excluded from the ratio gate —
   a sub-100µs micro (a flag probe, a tiny load) jitters by whole multiples
   on shared runners, and a 1.15× gate on a 40 ns measurement is a coin
   flip, not a regression check.  New/missing kernels still gate regardless
   of their magnitude.  Set --min-ns 0 to gate everything.

   Escape hatch for known-noisy or intentionally-slower changes: set
   TCCA_BENCH_NO_GATE to any non-empty value other than "0" (the CI
   workflow sets it when the PR carries the `bench-no-gate` label) and the
   comparison reverts to report-only.

   The parser is a hand-rolled scanner for the fixed schema — names are
   plain ASCII written with %S and the structure is one result object per
   line — so no JSON library is needed. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> die "bench_compare: %s" e

(* Start index of the next occurrence of [pat] at or after [from]. *)
let find_pat s pat from =
  let rec search i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then Some i
    else search (i + 1)
  in
  search from

(* Extract the string value following [key] at or after [from]; None if the
   key does not occur again. *)
let find_string s key from =
  match find_pat s (Printf.sprintf "\"%s\": \"" key) from with
  | None -> None
  | Some i ->
    let start = i + String.length key + 5 in
    let stop = String.index_from s start '"' in
    Some (String.sub s start (stop - start), stop)

(* Numeric value of [key] at or after [from], but only if the key occurs
   before [limit] — callers pass the start of the next record so an
   optional field (absent in schema /1) is never read from a later record. *)
let find_number ?(limit = max_int) s key from =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_pat s pat from with
  | Some i when i < limit ->
    let start = i + String.length pat in
    let stop = ref start in
    while
      !stop < String.length s
      && (match s.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | 'n' | 'u' | 'l' -> true (* "null" *)
         | _ -> false)
    do
      incr stop
    done;
    let tok = String.sub s start (!stop - start) in
    Some ((if tok = "null" then nan else float_of_string tok), !stop)
  | _ -> None

(* (name, ns_per_run, gflops) list, in file order; gflops is NaN when the
   record has no finite value (schema /1, or a kernel with no flop count). *)
let parse path =
  let s = read_file path in
  (match find_string s "schema" 0 with
  | Some (("tcca-bench/1" | "tcca-bench/2"), _) -> ()
  | Some (other, _) -> die "%s: unknown schema %S (want tcca-bench/1 or /2)" path other
  | None -> die "%s: no schema field — not a bench artifact?" path);
  let rec collect acc from =
    match find_string s "name" from with
    | None -> List.rev acc
    | Some (name, after_name) ->
      (match find_number s "ns_per_run" after_name with
      | None -> List.rev acc
      | Some (ns, after_ns) ->
        let next_record =
          match find_pat s "\"name\": \"" after_ns with
          | Some i -> i
          | None -> String.length s
        in
        let gf =
          match find_number ~limit:next_record s "gflops" after_ns with
          | Some (g, _) -> g
          | None -> nan
        in
        collect ((name, ns, gf) :: acc) after_ns)
  in
  collect [] 0

let pretty ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* "base -> cur GF/s" when either side carries a number; "" otherwise, so
   schema /1 inputs render exactly as before. *)
let pretty_gflops base_gf cur_gf =
  let one v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
  if Float.is_nan base_gf && Float.is_nan cur_gf then ""
  else Printf.sprintf "  %s -> %s GF/s" (one base_gf) (one cur_gf)

let () =
  let usage () =
    die "usage: bench_compare BASELINE.json CURRENT.json [--fail-above RATIO] [--min-ns NS]"
  in
  let rec parse_args base cur fail min_ns = function
    | [] -> (base, cur, fail, min_ns)
    | "--fail-above" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f when f > 0. -> parse_args base cur (Some f) min_ns rest
      | _ -> usage ())
    | "--fail-above" :: [] -> usage ()
    | "--min-ns" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f when f >= 0. -> parse_args base cur fail f rest
      | _ -> usage ())
    | "--min-ns" :: [] -> usage ()
    | a :: rest when base = None -> parse_args (Some a) cur fail min_ns rest
    | a :: rest when cur = None -> parse_args base (Some a) fail min_ns rest
    | _ -> usage ()
  in
  let base_path, cur_path, fail_above, min_ns =
    match parse_args None None None 1e5 (List.tl (Array.to_list Sys.argv)) with
    | Some b, Some c, f, m -> (b, c, f, m)
    | _ -> usage ()
  in
  let fail_above =
    match fail_above with
    | Some _ as f -> f
    | None -> (
      match Sys.getenv_opt "TCCA_BENCH_FAIL_ABOVE" with
      | None -> None
      | Some r -> (
        match float_of_string_opt r with
        | Some f when f > 0. -> Some f
        | _ -> die "bench_compare: bad TCCA_BENCH_FAIL_ABOVE %S" r))
  in
  let fail_above =
    match Sys.getenv_opt "TCCA_BENCH_NO_GATE" with
    | Some v when v <> "" && v <> "0" ->
      if fail_above <> None then
        print_endline "bench_compare: TCCA_BENCH_NO_GATE set — gate disabled, report only";
      None
    | _ -> fail_above
  in
  let base = parse base_path and cur = parse cur_path in
  let base_assoc = List.map (fun (n, ns, gf) -> (n, (ns, gf))) base in
  Printf.printf "bench_compare: %s (baseline) vs %s\n" base_path cur_path;
  Printf.printf "%-32s %12s %12s %8s\n" "kernel" "baseline" "current" "ratio";
  let worst = ref ("", 0.) in
  let compared = ref 0 and floored = ref 0 in
  (* Kernels present on only one side can't be ratio-checked, so under a gate
     they are failures in their own right: a new kernel would otherwise ship
     unguarded, and a vanished one would hide a regression by deletion. *)
  let fresh = ref [] and missing = ref [] in
  List.iter
    (fun (name, cur_ns, cur_gf) ->
      match List.assoc_opt name base_assoc with
      | None ->
        fresh := name :: !fresh;
        Printf.printf "%-32s %12s %12s %8s%s\n" name "-" (pretty cur_ns) "new"
          (pretty_gflops nan cur_gf)
      | Some (base_ns, base_gf)
        when Float.is_nan base_ns || Float.is_nan cur_ns || base_ns <= 0. ->
        Printf.printf "%-32s %12s %12s %8s%s\n" name (pretty base_ns) (pretty cur_ns) "n/a"
          (pretty_gflops base_gf cur_gf)
      | Some (base_ns, base_gf) ->
        let ratio = cur_ns /. base_ns in
        let gated = Float.max base_ns cur_ns >= min_ns in
        if gated then begin
          incr compared;
          if ratio > snd !worst then worst := (name, ratio)
        end
        else incr floored;
        Printf.printf "%-32s %12s %12s %7.2fx%s%s\n" name (pretty base_ns) (pretty cur_ns)
          ratio
          (if not gated then "  (sub-floor, report-only)"
           else if ratio > 1.5 then "  <-- slower"
           else "")
          (pretty_gflops base_gf cur_gf))
    cur;
  List.iter
    (fun (name, base_ns, _) ->
      if not (List.exists (fun (n, _, _) -> n = name) cur) then begin
        missing := name :: !missing;
        Printf.printf "%-32s %12s %12s %8s\n" name (pretty base_ns) "-" "gone"
      end)
    base;
  let fresh = List.rev !fresh and missing = List.rev !missing in
  if !compared = 0 then print_endline "bench_compare: no common kernels to compare"
  else
    Printf.printf
      "bench_compare: %d kernels compared (%d new, %d missing, %d below the %s noise \
       floor), worst ratio %.2fx (%s)\n"
      !compared (List.length fresh) (List.length missing) !floored (pretty min_ns)
      (snd !worst) (fst !worst);
  match fail_above with
  | Some limit ->
    let failed = ref false in
    if snd !worst > limit then begin
      Printf.printf "bench_compare: FAIL — %s is %.2fx > %.2fx limit\n" (fst !worst)
        (snd !worst) limit;
      failed := true
    end;
    if fresh <> [] then begin
      Printf.printf
        "bench_compare: FAIL — kernel(s) not in the baseline: %s (refresh \
         BENCH_baseline.json so they are gated)\n"
        (String.concat ", " fresh);
      failed := true
    end;
    if missing <> [] then begin
      Printf.printf
        "bench_compare: FAIL — baseline kernel(s) missing from the candidate: %s \
         (removed on purpose? refresh BENCH_baseline.json)\n"
        (String.concat ", " missing);
      failed := true
    end;
    if !failed then exit 1
  | None -> ()
