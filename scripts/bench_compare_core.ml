(* The parsing and gating logic of bench_compare, as a library so the
   new/missing/sub-floor interaction is unit-testable (scripts/bench_compare.ml
   keeps only the CLI and printing).

   The parser is a hand-rolled scanner for the fixed schema (tcca-bench/1,
   /2 or /3) — names are plain ASCII written with %S and the structure is
   one result object per line — so no JSON library is needed.  Schema /3
   added optional per-record "p50_ns"/"p99_ns" latency percentiles (the
   serve micros carry them); older records parse with those fields NaN. *)

type entry = {
  e_name : string;
  e_ns : float;
  e_gflops : float;
  e_p50 : float;  (* NaN when the record carries no latency percentiles *)
  e_p99 : float;
}

(* Start index of the next occurrence of [pat] at or after [from]. *)
let find_pat s pat from =
  let rec search i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then Some i
    else search (i + 1)
  in
  search from

(* Extract the string value following [key] at or after [from]; None if the
   key does not occur again. *)
let find_string s key from =
  match find_pat s (Printf.sprintf "\"%s\": \"" key) from with
  | None -> None
  | Some i ->
    let start = i + String.length key + 5 in
    let stop = String.index_from s start '"' in
    Some (String.sub s start (stop - start), stop)

(* Numeric value of [key] at or after [from], but only if the key occurs
   before [limit] — callers pass the start of the next record so an
   optional field (absent in schema /1) is never read from a later record. *)
let find_number ?(limit = max_int) s key from =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_pat s pat from with
  | Some i when i < limit ->
    let start = i + String.length pat in
    let stop = ref start in
    while
      !stop < String.length s
      && (match s.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | 'n' | 'u' | 'l' -> true (* "null" *)
         | _ -> false)
    do
      incr stop
    done;
    let tok = String.sub s start (!stop - start) in
    Some ((if tok = "null" then nan else float_of_string tok), !stop)
  | _ -> None

(* Entries in file order; gflops is NaN when the record has no finite value
   (schema /1, or a kernel with no flop count). *)
let parse_string ~path s =
  match find_string s "schema" 0 with
  | Some (("tcca-bench/1" | "tcca-bench/2" | "tcca-bench/3"), _) ->
    let rec collect acc from =
      match find_string s "name" from with
      | None -> Ok (List.rev acc)
      | Some (name, after_name) -> (
        match find_number s "ns_per_run" after_name with
        | None -> Ok (List.rev acc)
        | Some (ns, after_ns) ->
          let next_record =
            match find_pat s "\"name\": \"" after_ns with
            | Some i -> i
            | None -> String.length s
          in
          let optional key =
            match find_number ~limit:next_record s key after_ns with
            | Some (g, _) -> g
            | None -> nan
          in
          collect
            ({ e_name = name;
               e_ns = ns;
               e_gflops = optional "gflops";
               e_p50 = optional "p50_ns";
               e_p99 = optional "p99_ns" }
            :: acc)
            after_ns)
    in
    collect [] 0
  | Some (other, _) ->
    Error
      (Printf.sprintf "%s: unknown schema %S (want tcca-bench/1, /2 or /3)" path other)
  | None -> Error (Printf.sprintf "%s: no schema field — not a bench artifact?" path)

(* One table row of the comparison. *)
type row = {
  r_name : string;
  r_base_ns : float; (* NaN when the kernel is new *)
  r_cur_ns : float;  (* NaN when the kernel vanished *)
  r_base_gf : float;
  r_cur_gf : float;
  r_base_p50 : float; (* latency percentiles; NaN when absent (schema < /3) *)
  r_cur_p50 : float;
  r_base_p99 : float;
  r_cur_p99 : float;
  r_ratio : float;   (* NaN when not comparable *)
  r_gated : bool;    (* participates in the gate (above the noise floor) *)
}

type verdict = {
  rows : row list;           (* current-file order, then baseline-only rows *)
  compared : int;            (* common kernels above the floor *)
  floored : int;             (* common kernels below the floor *)
  worst : string * float;    (* worst gated ratio *)
  fresh : string list;       (* new kernels above the floor — gate *)
  fresh_floored : string list;   (* new kernels below the floor — report only *)
  missing : string list;     (* vanished kernels above the floor — gate *)
  missing_floored : string list; (* vanished below the floor — report only *)
}

(* The noise floor applies uniformly: a kernel is exempt from the gate when
   every side it exists on runs under [min_ns] — including new and missing
   kernels, which previously gated regardless of magnitude, so adding a
   40 ns flag-probe micro would fail the gate until the baseline was
   refreshed even though its timing carries no signal. *)
let compare_runs ~min_ns base cur =
  let base_assoc = List.map (fun e -> (e.e_name, e)) base in
  let compared = ref 0 and floored = ref 0 in
  let worst = ref ("", 0.) in
  let fresh = ref [] and fresh_floored = ref [] in
  let missing = ref [] and missing_floored = ref [] in
  let cur_rows =
    List.map
      (fun e ->
        match List.assoc_opt e.e_name base_assoc with
        | None ->
          let gated = not (e.e_ns < min_ns) in
          if gated then fresh := e.e_name :: !fresh
          else fresh_floored := e.e_name :: !fresh_floored;
          { r_name = e.e_name;
            r_base_ns = nan;
            r_cur_ns = e.e_ns;
            r_base_gf = nan;
            r_cur_gf = e.e_gflops;
            r_base_p50 = nan;
            r_cur_p50 = e.e_p50;
            r_base_p99 = nan;
            r_cur_p99 = e.e_p99;
            r_ratio = nan;
            r_gated = gated }
        | Some b
          when Float.is_nan b.e_ns || Float.is_nan e.e_ns || b.e_ns <= 0. ->
          { r_name = e.e_name;
            r_base_ns = b.e_ns;
            r_cur_ns = e.e_ns;
            r_base_gf = b.e_gflops;
            r_cur_gf = e.e_gflops;
            r_base_p50 = b.e_p50;
            r_cur_p50 = e.e_p50;
            r_base_p99 = b.e_p99;
            r_cur_p99 = e.e_p99;
            r_ratio = nan;
            r_gated = false }
        | Some b ->
          let ratio = e.e_ns /. b.e_ns in
          let gated = Float.max b.e_ns e.e_ns >= min_ns in
          if gated then begin
            incr compared;
            if ratio > snd !worst then worst := (e.e_name, ratio)
          end
          else incr floored;
          { r_name = e.e_name;
            r_base_ns = b.e_ns;
            r_cur_ns = e.e_ns;
            r_base_gf = b.e_gflops;
            r_cur_gf = e.e_gflops;
            r_base_p50 = b.e_p50;
            r_cur_p50 = e.e_p50;
            r_base_p99 = b.e_p99;
            r_cur_p99 = e.e_p99;
            r_ratio = ratio;
            r_gated = gated })
      cur
  in
  let missing_rows =
    List.filter_map
      (fun b ->
        if List.exists (fun e -> e.e_name = b.e_name) cur then None
        else begin
          let gated = not (b.e_ns < min_ns) in
          if gated then missing := b.e_name :: !missing
          else missing_floored := b.e_name :: !missing_floored;
          Some
            { r_name = b.e_name;
              r_base_ns = b.e_ns;
              r_cur_ns = nan;
              r_base_gf = b.e_gflops;
              r_cur_gf = nan;
              r_base_p50 = b.e_p50;
              r_cur_p50 = nan;
              r_base_p99 = b.e_p99;
              r_cur_p99 = nan;
              r_ratio = nan;
              r_gated = gated }
        end)
      base
  in
  { rows = cur_rows @ missing_rows;
    compared = !compared;
    floored = !floored;
    worst = !worst;
    fresh = List.rev !fresh;
    fresh_floored = List.rev !fresh_floored;
    missing = List.rev !missing;
    missing_floored = List.rev !missing_floored }

(* Failure messages under a gate limit; [] means the gate passes. *)
let gate_failures ~limit v =
  let fails = ref [] in
  if v.missing <> [] then
    fails :=
      Printf.sprintf
        "baseline kernel(s) missing from the candidate: %s (removed on purpose? refresh \
         BENCH_baseline.json)"
        (String.concat ", " v.missing)
      :: !fails;
  if v.fresh <> [] then
    fails :=
      Printf.sprintf
        "kernel(s) not in the baseline: %s (refresh BENCH_baseline.json so they are gated)"
        (String.concat ", " v.fresh)
      :: !fails;
  if snd v.worst > limit then
    fails :=
      Printf.sprintf "%s is %.2fx > %.2fx limit" (fst v.worst) (snd v.worst) limit :: !fails;
  !fails
